(* Tests for warm-start re-simulation: Net change tracking,
   Engine.simulate ?from equivalence with cold runs (hand-built and
   randomized), AS-path interning, and the refiner under each RD_WARM
   mode. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Intern = Simulator.Intern
module Warm = Simulator.Warm
module Qrmodel = Asmodel.Qrmodel
module Refiner = Refine.Refiner

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let p = Asn.origin_prefix 4

(* -- Net change tracking -- *)

let line () =
  (* 1 -- 2 -- 3 *)
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let c = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let sab, _sba = Net.connect net a b in
  let sbc, _scb = Net.connect net b c in
  (net, a, b, c, sab, sbc)

let touched_tracking () =
  let net, a, b, _c, sab, sbc = line () in
  check_bool "initially empty" true (Net.touched_nodes net p = []);
  (* Import-side edits record the sending peer, not the receiver. *)
  Net.set_import_med net a sab p 0;
  check_bool "med import touches sender" true (Net.touched_nodes net p = [ b ]);
  Net.clear_import_med net a sab p;
  Net.set_import_lpref_for net a sab p 200;
  Net.clear_import_lpref_for net a sab p;
  check_bool "still just the sender (dedup)" true
    (Net.touched_nodes net p = [ b ]);
  (* Export-side edits record the exporting node itself. *)
  Net.deny_export net b sbc p;
  check_bool "deny touches exporter, sorted" true
    (Net.touched_nodes net p = [ a; b ] || Net.touched_nodes net p = [ b ]);
  check_bool "sorted ascending" true
    (let l = Net.touched_nodes net p in
     List.sort compare l = l);
  Net.allow_export net b sbc p;
  (* Other prefixes are untouched. *)
  check_bool "per-prefix isolation" true
    (Net.touched_nodes net (Asn.origin_prefix 9) = []);
  Net.clear_touched net p;
  check_bool "cleared" true (Net.touched_nodes net p = [])

let generation_tracking () =
  let net, a, _b, c, sab, _ = line () in
  let g0 = Net.generation net in
  (* Per-prefix policy edits leave the generation alone. *)
  Net.set_import_med net a sab p 0;
  Net.deny_export net a sab p;
  check_int "policy edits keep generation" g0 (Net.generation net);
  (* Structural and network-wide edits bump it. *)
  let d = Net.add_node net ~asn:9 ~ip:(Asn.router_ip 9 0) in
  check_bool "add_node bumps" true (Net.generation net > g0);
  let g1 = Net.generation net in
  ignore (Net.connect net c d);
  check_bool "connect bumps" true (Net.generation net > g1);
  let g2 = Net.generation net in
  Net.set_default_med net 50;
  Net.set_decision_steps net (Net.decision_steps net);
  Net.set_import_lpref net a sab 120;
  check_bool "global knobs bump" true (Net.generation net > g2);
  let g3 = Net.generation net in
  ignore (Net.duplicate_node net a);
  check_bool "duplicate_node bumps" true (Net.generation net > g3)

(* -- warm-resume equivalence on a hand-built scenario -- *)

(* Figure 5-style diamond: AS 1 reaches AS 4 directly and via AS 5. *)
let diamond_graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let check_equivalent label cold warm =
  check_bool (label ^ ": same outcome") true
    (Engine.converged cold = Engine.converged warm);
  check_bool (label ^ ": same state") true (Engine.same_state cold warm);
  check_int
    (label ^ ": same fingerprint")
    (Engine.state_fingerprint cold)
    (Engine.state_fingerprint warm)

let resume_after_policy_change () =
  let m = Qrmodel.initial diamond_graph in
  let net = m.Qrmodel.net in
  let prev = Qrmodel.simulate m p in
  check_bool "cold converged" true (Engine.converged prev);
  Net.clear_touched net p;
  (* Make AS 1 prefer the longer route via 5: MED 0 on the session from
     5, and filter the direct announcement 4 -> 1. *)
  let n1 = List.hd (Net.nodes_of_as net 1) in
  let n4 = List.hd (Net.nodes_of_as net 4) in
  let s15 =
    match Net.find_session net n1 (List.hd (Net.nodes_of_as net 5)) with
    | Some s -> s
    | None -> Alcotest.fail "no session 1-5"
  in
  let s41 =
    match Net.find_session net n4 n1 with
    | Some s -> s
    | None -> Alcotest.fail "no session 4-1"
  in
  Net.set_import_med net n1 s15 p 0;
  Net.deny_export net n4 s41 p;
  check_bool "still resumable" true (Engine.resumable net prev);
  let touched = Net.touched_nodes net p in
  check_bool "touched nonempty" true (touched <> []);
  let warm =
    Engine.simulate ~from:prev ~touched net ~prefix:p
      ~originators:(Qrmodel.originators m p)
  in
  let cold = Qrmodel.simulate m p in
  check_equivalent "policy change" cold warm;
  (* The new fixed point actually changed: AS 1 now selects 1-5-4. *)
  check_bool "longer path selected" true
    (List.mem [| 1; 5; 4 |] (Engine.selected_paths net warm 1))

let resume_after_filter_removal () =
  let m = Qrmodel.initial diamond_graph in
  let net = m.Qrmodel.net in
  let n4 = List.hd (Net.nodes_of_as net 4) in
  let n1 = List.hd (Net.nodes_of_as net 1) in
  let s41 =
    match Net.find_session net n4 n1 with
    | Some s -> s
    | None -> Alcotest.fail "no session 4-1"
  in
  Net.deny_export net n4 s41 p;
  let prev = Qrmodel.simulate m p in
  Net.clear_touched net p;
  Net.allow_export net n4 s41 p;
  let warm =
    Engine.simulate ~from:prev net ~prefix:p
      ~originators:(Qrmodel.originators m p)
  in
  let cold = Qrmodel.simulate m p in
  check_equivalent "filter removal" cold warm;
  check_bool "direct path back" true
    (List.mem [| 1; 4 |] (Engine.selected_paths net warm 1))

let resume_noop_is_free () =
  let m = Qrmodel.initial diamond_graph in
  let net = m.Qrmodel.net in
  let prev = Qrmodel.simulate m p in
  Net.clear_touched net p;
  let originators = Qrmodel.originators m p in
  let warm = Engine.simulate ~from:prev ~touched:[] net ~prefix:p ~originators in
  check_int "no events" 0 (Engine.events warm);
  check_equivalent "no-op" prev warm;
  (* A replayed node whose advertisements are unchanged costs exactly
     its replay event and disturbs nothing. *)
  let n4 = List.hd (Net.nodes_of_as net 4) in
  let warm2 =
    Engine.simulate ~from:prev ~touched:[ n4 ] net ~prefix:p ~originators
  in
  check_int "one replay event" 1 (Engine.events warm2);
  check_equivalent "unchanged replay" prev warm2

let warm_locality () =
  (* A 30-AS chain: a policy tweak at the far end disturbs only its
     neighbourhood, so the warm drain executes a handful of events
     while a cold run re-floods the whole chain. *)
  let graph = Topology.Asgraph.of_edges (List.init 29 (fun i -> (i + 1, i + 2))) in
  let m = Qrmodel.initial graph in
  let net = m.Qrmodel.net in
  let prefix = Asn.origin_prefix 1 in
  let prev = Qrmodel.simulate m prefix in
  Net.clear_touched net prefix;
  let n30 = List.hd (Net.nodes_of_as net 30) in
  let s = fst (List.hd (Net.sessions_of net n30)) in
  Net.set_import_med net n30 s prefix 0;
  let warm =
    Engine.simulate ~from:prev net ~prefix
      ~originators:(Qrmodel.originators m prefix)
  in
  let cold = Qrmodel.simulate m prefix in
  check_equivalent "chain" cold warm;
  check_bool "warm executes far fewer events" true
    (Engine.events warm * 5 < Engine.events cold)

let resumable_guards () =
  let m = Qrmodel.initial diamond_graph in
  let net = m.Qrmodel.net in
  let prev = Qrmodel.simulate m p in
  check_bool "fresh state is resumable" true (Engine.resumable net prev);
  (* A truncated state is not. *)
  let truncated = Qrmodel.simulate ~max_events:1 m p in
  check_bool "truncated not resumable" false (Engine.resumable net truncated);
  (* A structural change invalidates prior states. *)
  ignore (Net.duplicate_node net (List.hd (Net.nodes_of_as net 1)));
  check_bool "stale generation not resumable" false (Engine.resumable net prev);
  (* simulate ?from falls back to a cold start silently and counts the
     miss — callers pass their cache slot unconditionally. *)
  let misses0 = Obs.Metrics.find_counter "engine.warm_resume_misses" in
  let st =
    Engine.simulate ~from:prev net ~prefix:p
      ~originators:(Qrmodel.originators m p)
  in
  check_bool "cold fallback converged" true (Engine.converged st);
  check_int "miss counted" (misses0 + 1)
    (Obs.Metrics.find_counter "engine.warm_resume_misses");
  let cold = Qrmodel.simulate m p in
  check_equivalent "fallback equals cold" cold st

(* -- AS-path interning -- *)

let interning () =
  let a = Intern.path [| 3; 2; 1 |] in
  let b = Intern.path [| 3; 2; 1 |] in
  check_bool "equal paths share one array" true (a == b);
  check_bool "content preserved" true (a = [| 3; 2; 1 |]);
  let e = Intern.path [||] in
  check_bool "empty is the shared atom" true (e == Intern.path [||]);
  let pr = Intern.prepend ~own_as:7 a in
  check_bool "prepend content" true (pr = [| 7; 3; 2; 1 |]);
  check_bool "prepend memoized" true (pr == Intern.prepend ~own_as:7 b);
  check_bool "prepend interned" true (pr == Intern.path [| 7; 3; 2; 1 |]);
  check_int "hash agrees with fresh array"
    (Intern.path_hash a)
    (Intern.path_hash [| 3; 2; 1 |]);
  check_bool "hash separates lengths" true
    (Intern.path_hash [| 1 |] <> Intern.path_hash [| 1; 1 |])

(* -- randomized warm/cold equivalence -- *)

(* Random connected graph plus a script of per-prefix policy edits;
   warm resumption after the edits must land on the cold fixed point. *)
let gen_scenario =
  QCheck.Gen.(
    let* n = int_range 3 12 in
    let* tree_choices = list_repeat (n - 1) (int_bound 1_000_000) in
    let* extra = int_range 0 n in
    let* extra_pairs =
      list_repeat extra (pair (int_bound 1_000_000) (int_bound 1_000_000))
    in
    let* edits = list_size (int_range 1 6) (int_bound 1_000_000) in
    let edges =
      List.mapi (fun i r -> (2 + i, 1 + (r mod (i + 1)))) tree_choices
      @ List.map (fun (a, b) -> (1 + (a mod n), 1 + (b mod n))) extra_pairs
    in
    return (Topology.Asgraph.of_edges edges, edits))

let arb_scenario =
  QCheck.make
    ~print:(fun (g, edits) ->
      Printf.sprintf "edges=%s edits=%s"
        (String.concat ","
           (List.map
              (fun (a, b) -> Printf.sprintf "%d-%d" a b)
              (Topology.Asgraph.edges g)))
        (String.concat "," (List.map string_of_int edits)))
    gen_scenario

let apply_random_edit net prefix r =
  let n = r mod Net.node_count net in
  let nsess = Net.session_count_of net n in
  if nsess = 0 then ()
  else
    let s = r / 7 mod nsess in
    match r / 3 mod 4 with
    | 0 -> Net.set_import_med net n s prefix 0
    | 1 -> Net.deny_export net n s prefix
    | 2 -> Net.allow_export net n s prefix
    | _ -> Net.clear_import_med net n s prefix

let prop_warm_equals_cold =
  QCheck.Test.make ~name:"warm resume reaches the cold fixed point" ~count:100
    arb_scenario
    (fun (graph, edits) ->
      let m = Qrmodel.initial graph in
      let net = m.Qrmodel.net in
      let prefix = fst (List.hd m.Qrmodel.prefixes) in
      let prev = Qrmodel.simulate m prefix in
      Net.clear_touched net prefix;
      List.iter (apply_random_edit net prefix) edits;
      let warm =
        Engine.simulate ~from:prev net ~prefix
          ~originators:(Qrmodel.originators m prefix)
      in
      let cold = Qrmodel.simulate m prefix in
      Engine.converged cold && Engine.converged warm
      && Engine.same_state cold warm
      && Engine.state_fingerprint cold = Engine.state_fingerprint warm
      && List.for_all
           (fun node ->
             Simulator.Rattr.same_advertisement (Engine.best cold node)
               (Engine.best warm node))
           (List.init (Net.node_count net) Fun.id))

(* -- the refiner under each mode -- *)

let fig5_training =
  let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn } in
  let entry o origin path_list =
    {
      Rib.op = op o;
      prefix = Asn.origin_prefix origin;
      path = Aspath.of_list path_list;
    }
  in
  Rib.of_entries
    [ entry 1 3 [ 1; 2; 3 ]; entry 1 4 [ 1; 4 ]; entry 1 4 [ 1; 5; 4 ] ]

let refine_in mode =
  let prior = Warm.current () in
  Warm.set mode;
  Fun.protect
    ~finally:(fun () -> Warm.set prior)
    (fun () ->
      let m = Qrmodel.initial diamond_graph in
      Refiner.refine m ~training:fig5_training)

let refiner_mode_equivalence () =
  let off = refine_in Warm.Off in
  let on = refine_in Warm.On in
  check_bool "off converged" true off.Refiner.converged;
  check_bool "on converged" true on.Refiner.converged;
  check_int "same matched" off.Refiner.matched on.Refiner.matched;
  check_int "same total" off.Refiner.total on.Refiner.total;
  check_int "same iterations" off.Refiner.iterations on.Refiner.iterations;
  (* Same final routing, state by state. *)
  Hashtbl.iter
    (fun prefix st_off ->
      match Hashtbl.find_opt on.Refiner.states prefix with
      | None -> Alcotest.fail "state missing under warm mode"
      | Some st_on ->
          check_int "same final fingerprint"
            (Engine.state_fingerprint st_off)
            (Engine.state_fingerprint st_on))
    off.Refiner.states

let refiner_verify_clean () =
  Warm.reset_stats ();
  let r = refine_in Warm.Verify in
  check_bool "verify converged" true r.Refiner.converged;
  let s = Warm.stats () in
  check_bool "some pairs compared" true (s.Warm.verified > 0);
  check_int "zero divergences" 0 s.Warm.divergences;
  Warm.reset_stats ()

let suite =
  [
    Alcotest.test_case "touched tracking" `Quick touched_tracking;
    Alcotest.test_case "generation tracking" `Quick generation_tracking;
    Alcotest.test_case "resume after policy change" `Quick
      resume_after_policy_change;
    Alcotest.test_case "resume after filter removal" `Quick
      resume_after_filter_removal;
    Alcotest.test_case "no-op resume is free" `Quick resume_noop_is_free;
    Alcotest.test_case "warm locality on a chain" `Quick warm_locality;
    Alcotest.test_case "resumable guards" `Quick resumable_guards;
    Alcotest.test_case "path interning" `Quick interning;
    QCheck_alcotest.to_alcotest prop_warm_equals_cold;
    Alcotest.test_case "refiner mode equivalence" `Quick
      refiner_mode_equivalence;
    Alcotest.test_case "refiner verify is clean" `Quick refiner_verify_clean;
  ]
