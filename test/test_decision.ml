(* Tests for the BGP decision process. *)

module D = Simulator.Decision
module R = Simulator.Rattr

let check_bool = Alcotest.(check bool)

let route ?(path = [| 2; 6 |]) ?(lpref = 100) ?(med = 100) ?(igp = 0)
    ?(from_node = 0) ?(from_ip = 10) ?(learned = R.From_ebgp)
    ?(learned_class = -1) ?(from_session = 0) () =
  { R.path; lpref; med; igp; from_node; from_ip; from_session; learned; learned_class }

let steps = D.model_steps

let local_pref_wins () =
  let a = route ~lpref:120 ~path:[| 2; 3; 4; 6 |] () in
  let b = route ~lpref:100 ~path:[| 2; 6 |] () in
  check_bool "higher lpref beats shorter path" true (D.select steps [ a; b ] = Some a)

let path_length_wins () =
  let a = route ~path:[| 2; 6 |] ~med:500 () in
  let b = route ~path:[| 2; 3; 6 |] ~med:0 () in
  check_bool "shorter path beats lower med" true (D.select steps [ a; b ] = Some a)

let med_always_compared () =
  (* Two routes from different neighbour ASes: MED still decides (the
     paper requires always-compare-MED, §4.6). *)
  let a = route ~path:[| 2; 6 |] ~med:0 ~from_ip:99 () in
  let b = route ~path:[| 3; 6 |] ~med:100 ~from_ip:1 () in
  check_bool "lower med wins across neighbours" true
    (D.select steps [ b; a ] = Some a)

let med_scoped_to_neighbor () =
  (* RFC 4271 §9.1.2.2: under [Same_neighbor] scoping, MED only
     compares routes learned from the same neighbouring AS (first hop
     of the path).  Across neighbour ASes it must not decide. *)
  let full = D.full_steps in
  let via2 = route ~path:[| 2; 6 |] ~med:100 ~from_ip:1 () in
  let via3 = route ~path:[| 3; 6 |] ~med:0 ~from_ip:99 () in
  check_bool "always-compare picks the lower med" true
    (D.select full [ via2; via3 ] = Some via3);
  check_bool "scoped med defers to the address tie-break" true
    (D.select ~med_scope:D.Same_neighbor full [ via2; via3 ] = Some via2);
  (* Within one neighbour AS, MED still eliminates. *)
  let via2' = route ~path:[| 2; 6 |] ~med:50 ~from_ip:99 () in
  check_bool "scoped med decides within one neighbour" true
    (D.select ~med_scope:D.Same_neighbor full [ via2; via2' ] = Some via2')

let med_scope_survivors () =
  (* The scoped Med step keeps each neighbour group's minima;
     always-compare keeps only the global minimum. *)
  let a2 = route ~path:[| 2; 6 |] ~med:10 () in
  let b2 = route ~path:[| 2; 7 |] ~med:5 () in
  let c3 = route ~path:[| 3; 6 |] ~med:100 () in
  check_bool "per-neighbour minima survive" true
    (D.survivors ~med_scope:D.Same_neighbor D.Med [ a2; b2; c3 ]
    = [ b2; c3 ]);
  check_bool "always-compare keeps the global minimum" true
    (D.survivors D.Med [ a2; b2; c3 ] = [ b2 ])

let med_scope_classify () =
  (* A cross-neighbour route with the higher MED is eliminated at Med
     under always-compare, but survives down to the tie-break under
     RFC scoping. *)
  let full = D.full_steps in
  let target (r : R.t) = r.R.path = [| 3; 6 |] in
  let via2 = route ~path:[| 2; 6 |] ~med:0 ~from_ip:1 () in
  let via3 = route ~path:[| 3; 6 |] ~med:100 ~from_ip:99 () in
  check_bool "always-compare: dies at med" true
    (D.classify full ~target [ via2; via3 ] = D.Eliminated_at D.Med);
  check_bool "scoped: dies only at the tie-break" true
    (D.classify ~med_scope:D.Same_neighbor full ~target [ via2; via3 ]
    = D.Eliminated_at D.Lowest_ip)

let tie_break_lowest_ip () =
  let a = route ~from_ip:5 () in
  let b = route ~from_ip:9 () in
  check_bool "lowest ip" true (D.select steps [ b; a ] = Some a)

let ebgp_and_igp_steps () =
  let full = D.full_steps in
  let ib = route ~learned:R.From_ibgp ~igp:10 ~from_ip:1 () in
  let eb = route ~learned:R.From_ebgp ~from_ip:9 () in
  check_bool "ebgp preferred" true (D.select full [ ib; eb ] = Some eb);
  let ib2 = route ~learned:R.From_ibgp ~igp:3 ~from_ip:9 () in
  check_bool "hot potato" true (D.select full [ ib; ib2 ] = Some ib2)

let empty_and_single () =
  check_bool "empty" true (D.select steps [] = None);
  let a = route () in
  check_bool "single" true (D.select steps [ a ] = Some a)

let originated_beats_learned () =
  let o = R.originated ~own_ip:42 in
  let l = route ~lpref:200 ~path:[| 2 |] () in
  check_bool "origination wins" true (D.select steps [ l; o ] = Some o)

let classify_verdicts () =
  let target (r : R.t) = r.R.path = [| 3; 6 |] in
  let good = route ~path:[| 3; 6 |] ~from_ip:9 () in
  let short = route ~path:[| 2 |] () in
  let equal_len_lower_ip = route ~path:[| 2; 6 |] ~from_ip:1 () in
  check_bool "selected" true
    (D.classify steps ~target [ good ] = D.Selected);
  check_bool "eliminated at path length" true
    (D.classify steps ~target [ good; short ] = D.Eliminated_at D.Path_length);
  check_bool "eliminated at tie break" true
    (D.classify steps ~target [ good; equal_len_lower_ip ]
    = D.Eliminated_at D.Lowest_ip);
  check_bool "not present" true
    (D.classify steps ~target [ short ] = D.Not_present);
  let high_lpref_rival = route ~path:[| 2; 6 |] ~lpref:300 () in
  check_bool "eliminated at lpref" true
    (D.classify steps ~target [ good; high_lpref_rival ]
    = D.Eliminated_at D.Local_pref)

let arb_route =
  let gen =
    QCheck.Gen.(
      let* len = int_range 0 5 in
      let* path = array_size (return len) (int_range 1 50) in
      let* lpref = int_range 50 150 in
      let* med = int_range 0 200 in
      let* igp = int_range 0 50 in
      let* from_ip = int_range 1 1000 in
      let* ebgp = bool in
      return
        (route ~path ~lpref ~med ~igp ~from_ip
           ~learned:(if ebgp then R.From_ebgp else R.From_ibgp)
           ()))
  in
  QCheck.make gen

let prop_select_is_minimum =
  (* The engine's pairwise-comparison fold and the elimination-based
     select must agree. *)
  QCheck.Test.make ~name:"select = min by compare_routes" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) arb_route)
    (fun candidates ->
      let by_select = D.select D.full_steps candidates in
      let by_fold =
        List.fold_left
          (fun acc r ->
            match acc with
            | None -> Some r
            | Some b -> if D.compare_routes D.full_steps r b < 0 then Some r else Some b)
          None candidates
      in
      match (by_select, by_fold) with
      | Some a, Some b -> D.compare_routes D.full_steps a b = 0
      | None, None -> true
      | Some _, None | None, Some _ -> false)

let prop_selected_never_dominated =
  QCheck.Test.make ~name:"selected route dominates all" ~count:300
    (QCheck.list_of_size (QCheck.Gen.int_range 1 8) arb_route)
    (fun candidates ->
      match D.select D.full_steps candidates with
      | None -> false
      | Some best ->
          List.for_all
            (fun r -> D.compare_routes D.full_steps best r <= 0)
            candidates)

let suite =
  [
    Alcotest.test_case "local-pref wins" `Quick local_pref_wins;
    Alcotest.test_case "path length wins" `Quick path_length_wins;
    Alcotest.test_case "med always compared" `Quick med_always_compared;
    Alcotest.test_case "med scoped to neighbour" `Quick med_scoped_to_neighbor;
    Alcotest.test_case "med scope survivors" `Quick med_scope_survivors;
    Alcotest.test_case "med scope classify" `Quick med_scope_classify;
    Alcotest.test_case "tie-break: lowest ip" `Quick tie_break_lowest_ip;
    Alcotest.test_case "ebgp/igp steps" `Quick ebgp_and_igp_steps;
    Alcotest.test_case "empty and single" `Quick empty_and_single;
    Alcotest.test_case "originated beats learned" `Quick originated_beats_learned;
    Alcotest.test_case "classify verdicts" `Quick classify_verdicts;
    QCheck_alcotest.to_alcotest prop_select_is_minimum;
    QCheck_alcotest.to_alcotest prop_selected_never_dominated;
  ]
