(* Tests for the query service: JSON codec, wire protocol, frozen
   snapshots, the query evaluator and the socket server. *)

open Bgp
module Net = Simulator.Net
module Qrmodel = Asmodel.Qrmodel
module Json = Serve.Json
module Protocol = Serve.Protocol
module Snapshot = Serve.Snapshot
module Query = Serve.Query
module Server = Serve.Server
module Ownership = Analysis.Ownership

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

(* -- JSON ------------------------------------------------------------- *)

let json_roundtrip () =
  let v =
    Json.Obj
      [
        ("i", Json.Int 42);
        ("neg", Json.Int (-7));
        ("f", Json.Float 1.5);
        ("s", Json.String "a \"quoted\"\nline");
        ("b", Json.Bool true);
        ("n", Json.Null);
        ("l", Json.List [ Json.Int 1; Json.List []; Json.Obj [] ]);
      ]
  in
  match Json.of_string (Json.to_string v) with
  | Error e -> Alcotest.failf "reparse failed: %s" e
  | Ok v' ->
      check_bool "round trip" true (v = v');
      check_bool "member" true (Json.member "i" v' = Some (Json.Int 42));
      check_bool "to_int" true (Json.to_int (Json.Int 42) = Some 42);
      check_bool "to_str" true
        (Option.bind (Json.member "s" v') Json.to_str
        = Some "a \"quoted\"\nline")

let json_rejects_garbage () =
  List.iter
    (fun s -> check_bool s true (Result.is_error (Json.of_string s)))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

(* -- protocol --------------------------------------------------------- *)

let request_roundtrip () =
  let reqs =
    [
      Protocol.Path { prefix = Asn.origin_prefix 3; asn = 5 };
      Protocol.Catchment { egress = 1; prefix = Some (Asn.origin_prefix 2) };
      Protocol.Catchment { egress = 4; prefix = None };
      Protocol.Whatif { a = 4; b = 5 };
      Protocol.Ping;
      Protocol.Reload;
      Protocol.Shutdown;
    ]
  in
  List.iter
    (fun req ->
      match Protocol.request_of_string (Protocol.request_to_string req) with
      | Error e -> Alcotest.failf "reparse failed: %s" e
      | Ok req' -> check_bool "request round trip" true (req = req'))
    reqs;
  check_bool "unknown op rejected" true
    (Result.is_error (Protocol.request_of_string {|{"op":"frobnicate"}|}));
  check_bool "bad prefix rejected" true
    (Result.is_error
       (Protocol.request_of_string {|{"op":"path","prefix":"x","as":5}|}))

let framing () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Protocol.write_frame a "hello";
  Protocol.write_frame a "";
  check_bool "first frame" true (Protocol.read_frame b = Ok (Some "hello"));
  check_bool "empty frame" true (Protocol.read_frame b = Ok (Some ""));
  Unix.close a;
  check_bool "clean EOF" true (Protocol.read_frame b = Ok None);
  Unix.close b;
  (* A truncated frame is an error, not an EOF. *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write a header 0 4);
  ignore (Unix.write_substring a "short" 0 5);
  Unix.close a;
  check_bool "truncated frame" true (Result.is_error (Protocol.read_frame b));
  Unix.close b

let read_timeout () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* A complete frame is unaffected by the deadline. *)
  Protocol.write_frame a "hello";
  check_bool "whole frame passes" true
    (Protocol.read_frame ~deadline_ms:200 b = Ok (Some "hello"));
  (* A peer stalling mid-frame times out with the dedicated error
     instead of pinning the reader. *)
  let header = Bytes.create 4 in
  Bytes.set_int32_be header 0 100l;
  ignore (Unix.write a header 0 4);
  ignore (Unix.write_substring a "stall" 0 5);
  let t0 = Unix.gettimeofday () in
  (match Protocol.read_frame ~deadline_ms:100 b with
  | Error msg ->
      check_bool "timeout error message" true (msg = Protocol.read_timeout_msg)
  | Ok _ -> Alcotest.fail "mid-frame stall should time out");
  check_bool "timed out promptly" true (Unix.gettimeofday () -. t0 < 5.0);
  Unix.close a;
  Unix.close b

(* -- snapshot + queries ----------------------------------------------- *)

let build_snapshot ?jobs () =
  let m = Qrmodel.initial graph in
  Snapshot.build ?jobs m

let snapshot_queries () =
  let snap = build_snapshot () in
  check_bool "converged" true (Snapshot.converged snap);
  check_int "all prefixes cached" 5 (List.length (Snapshot.states snap));
  (match Query.eval snap Protocol.Ping with
  | Ok (Protocol.Pong { prefixes; nodes }) ->
      check_int "pong prefixes" 5 prefixes;
      check_int "pong nodes" 5 nodes
  | _ -> Alcotest.fail "ping failed");
  (* Path answers come from the cached state, and match a fresh
     simulation. *)
  let p3 = Asn.origin_prefix 3 in
  (match Query.eval snap (Protocol.Path { prefix = p3; asn = 5 }) with
  | Ok (Protocol.Paths { paths; _ }) ->
      let m = Snapshot.model snap in
      let fresh = Qrmodel.simulate m p3 in
      check_bool "paths match fresh simulation" true
        (paths = Simulator.Engine.selected_paths m.Qrmodel.net fresh 5)
  | _ -> Alcotest.fail "path query failed");
  check_bool "unknown prefix is an error" true
    (Result.is_error
       (Query.eval snap
          (Protocol.Path
             { prefix = Prefix.of_string_exn "99.0.0.0/8"; asn = 5 })));
  (* Catchment: AS 5 reaches 3 via 4, so 5 is in 4's catchment for p3. *)
  match Query.eval snap (Protocol.Catchment { egress = 4; prefix = Some p3 }) with
  | Ok (Protocol.Catchment_members { members = [ (p, ases) ]; _ }) ->
      check_bool "prefix echoed" true (p = p3);
      check_bool "AS 5 transits 4" true (List.mem 5 ases);
      check_bool "egress not a member" false (List.mem 4 ases)
  | _ -> Alcotest.fail "catchment query failed"

let whatif_query_restores () =
  let snap = build_snapshot () in
  let m = Snapshot.model snap in
  let denies0, _ = Net.count_policies m.Qrmodel.net in
  let run () =
    match Query.eval snap (Protocol.Whatif { a = 4; b = 5 }) with
    | Ok (Protocol.Whatif_summary _ as payload) -> payload
    | Ok _ -> Alcotest.fail "unexpected payload"
    | Error e -> Alcotest.failf "whatif failed: %s" e
  in
  let p1 = run () in
  (match p1 with
  | Protocol.Whatif_summary { half_sessions; prefixes_affected; resume_hits; _ }
    ->
      check_int "two half-sessions" 2 half_sessions;
      check_bool "something changed" true (prefixes_affected > 0);
      check_bool "deltas resumed warm" true (resume_hits > 0)
  | _ -> ());
  (* The net is restored exactly: no leftover denies, and the live
     selected paths equal the published baseline. *)
  let denies1, _ = Net.count_policies m.Qrmodel.net in
  check_int "denies restored" denies0 denies1;
  let live = Asmodel.Whatif.of_states m (Snapshot.states snap) in
  let d = Asmodel.Whatif.diff (Snapshot.baseline snap) live in
  check_int "baseline intact" 0 d.Asmodel.Whatif.prefixes_affected;
  (* Repeatable: the second run sees the same world. *)
  let p2 = run () in
  check_bool "second run identical" true (p1 = p2);
  (* An unknown link is a zero-impact summary, not an error. *)
  match Query.eval snap (Protocol.Whatif { a = 2; b = 5 }) with
  | Ok (Protocol.Whatif_summary { half_sessions = 0; prefixes_affected = 0; _ })
    ->
      ()
  | _ -> Alcotest.fail "unknown link should be a zero summary"

let run_batch_orders_results () =
  let snap = build_snapshot () in
  let p2 = Asn.origin_prefix 2 in
  let reqs =
    [
      Protocol.Ping;
      Protocol.Whatif { a = 4; b = 5 };
      Protocol.Path { prefix = p2; asn = 4 };
      Protocol.Catchment { egress = 1; prefix = Some p2 };
    ]
  in
  let batch = Query.run_batch ~deadline_ms:0 snap reqs in
  check_int "one response per request" (List.length reqs) (List.length batch);
  List.iter2
    (fun req resp ->
      let solo = Query.eval snap req in
      check_bool "batch result matches solo eval" true
        (resp.Protocol.result = solo))
    reqs batch

(* -- wire server ------------------------------------------------------ *)

let with_server f =
  let path = Filename.temp_file "serve_test" ".sock" in
  let store = Snapshot.store () in
  Snapshot.publish store (build_snapshot ());
  let srv = Server.start ~deadline_ms:0 ~store (Server.Unix_path path) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop srv;
      Server.wait srv;
      (try Sys.remove path with Sys_error _ -> ());
      match Snapshot.current store with
      | Some snap -> Snapshot.retire snap
      | None -> ())
    (fun () -> f path)

let server_loopback () =
  with_server (fun path ->
      let conn =
        match Server.connect (Server.Unix_path path) with
        | Ok c -> c
        | Error e -> Alcotest.failf "connect failed: %s" e
      in
      let ask req =
        match Server.request conn req with
        | Ok json -> json
        | Error e -> Alcotest.failf "request failed: %s" e
      in
      let pong = ask Protocol.Ping in
      check_bool "ok" true (Json.member "ok" pong = Some (Json.Bool true));
      check_bool "prefixes" true
        (Option.bind (Json.member "result" pong) (fun r ->
             Option.bind (Json.member "prefixes" r) Json.to_int)
        = Some 5);
      let paths =
        ask (Protocol.Path { prefix = Asn.origin_prefix 3; asn = 5 })
      in
      check_bool "path ok" true
        (Json.member "ok" paths = Some (Json.Bool true));
      (* AS 5 reaches 3 via 4: the selected path is [5;4;3]. *)
      (match
         Option.bind (Json.member "result" paths) (fun r ->
             Option.bind (Json.member "paths" r) Json.to_list)
       with
      | Some [ Json.List hops ] ->
          check_bool "hops" true
            (List.filter_map Json.to_int hops = [ 5; 4; 3 ])
      | _ -> Alcotest.fail "unexpected paths shape");
      Server.close_conn conn)

let server_shutdown_stops () =
  let path = Filename.temp_file "serve_test" ".sock" in
  let store = Snapshot.store () in
  Snapshot.publish store (build_snapshot ());
  let srv = Server.start ~deadline_ms:0 ~store (Server.Unix_path path) in
  let conn = Result.get_ok (Server.connect (Server.Unix_path path)) in
  (match Server.request conn Protocol.Shutdown with
  | Ok json ->
      check_bool "closing acknowledged" true
        (Json.member "ok" json = Some (Json.Bool true))
  | Error e -> Alcotest.failf "shutdown failed: %s" e);
  Server.close_conn conn;
  (* wait returns: the accept loop observed the shutdown. *)
  Server.wait srv;
  check_bool "socket unlinked" false (Sys.file_exists path);
  (match Snapshot.current store with
  | Some snap -> Snapshot.retire snap
  | None -> ());
  try Sys.remove path with Sys_error _ -> ()

(* -- churn: rebuild-and-swap ------------------------------------------ *)

let reload_swaps_snapshot () =
  let store = Snapshot.store () in
  check_bool "no snapshot yet" true
    (Result.is_error (Serve.Churn.reload store));
  let snap0 = build_snapshot () in
  Snapshot.publish store snap0;
  (match Serve.Churn.reload store with
  | Ok (Protocol.Reloaded { prefixes; resume_hits; _ }) ->
      check_int "all prefixes rebuilt" 5 prefixes;
      check_bool "rebuild resumed warm" true (resume_hits > 0)
  | Ok _ -> Alcotest.fail "unexpected payload"
  | Error e -> Alcotest.failf "reload failed: %s" e);
  let snap1 =
    match Snapshot.current store with
    | Some s -> s
    | None -> Alcotest.fail "store empty after reload"
  in
  check_bool "a fresh snapshot was published" true (not (snap1 == snap0));
  (* The old snapshot is retired; the new one answers identically. *)
  check_bool "old snapshot retired" true
    (match Snapshot.exclusive snap0 (fun () -> ()) with
    | exception Invalid_argument _ -> true
    | () -> false);
  (match Query.eval snap1 Protocol.Ping with
  | Ok (Protocol.Pong { prefixes = 5; _ }) -> ()
  | _ -> Alcotest.fail "new snapshot does not answer");
  check_bool "reload via bare Query.eval refused" true
    (Result.is_error (Query.eval snap1 Protocol.Reload));
  Snapshot.retire snap1

let churn_apply_publishes () =
  let store = Snapshot.store () in
  let snap0 = build_snapshot () in
  Snapshot.publish store snap0;
  let p3 = Asn.origin_prefix 3 in
  let baseline =
    match Query.eval snap0 (Protocol.Path { prefix = p3; asn = 5 }) with
    | Ok (Protocol.Paths { paths; _ }) -> paths
    | _ -> Alcotest.fail "baseline path query failed"
  in
  (* A paired stream (down then up) ends back at the baseline, but must
     go through a real mid-stream disruption. *)
  let events =
    [
      Stream.Event.make ~ts_ms:0 (Stream.Event.Session_down { a = 4; b = 5 });
      Stream.Event.make ~ts_ms:10 (Stream.Event.Session_up { a = 4; b = 5 });
    ]
  in
  (match Serve.Churn.apply store events with
  | Ok report ->
      check_int "both events applied" 2 report.Stream.Replay.events;
      check_int "no quarantine" 0
        (List.length report.Stream.Replay.quarantine)
  | Error e -> Alcotest.failf "churn apply failed: %s" e);
  let snap1 = Option.get (Snapshot.current store) in
  check_bool "swap happened" true (not (snap1 == snap0));
  (match Query.eval snap1 (Protocol.Path { prefix = p3; asn = 5 }) with
  | Ok (Protocol.Paths { paths; _ }) ->
      check_bool "post-churn snapshot matches baseline" true (paths = baseline)
  | _ -> Alcotest.fail "post-churn path query failed");
  Snapshot.retire snap1

(* A client that hangs up before reading its response must cost only
   that connection: SIGPIPE is ignored in Server.start, so the write
   fails with EPIPE and the server keeps answering (without it the
   signal killed the whole process — a per-connection exception handler
   cannot catch a signal). *)
let client_disconnect_keeps_serving () =
  with_server (fun path ->
      for _ = 1 to 5 do
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        (* A what-if is slow enough that the server is usually still
           computing when the peer vanishes, so the response write hits
           a closed socket. *)
        Protocol.write_frame fd
          (Protocol.request_to_string (Protocol.Whatif { a = 4; b = 5 }));
        Unix.close fd
      done;
      Thread.delay 0.05;
      let conn = Result.get_ok (Server.connect (Server.Unix_path path)) in
      (match Server.request conn Protocol.Ping with
      | Ok json ->
          check_bool "still serving" true
            (Json.member "ok" json = Some (Json.Bool true))
      | Error e -> Alcotest.failf "server died after disconnects: %s" e);
      Server.close_conn conn)

(* Paired events split across Churn.apply calls must still match up:
   each apply resumes the replay driver from the snapshot's persisted
   state (before the fix the up/end half was a silent no-op, leaving
   the link down and the hijack in force forever). *)
let churn_pairs_across_applies () =
  let store = Snapshot.store () in
  let snap0 = build_snapshot () in
  let net = (Snapshot.model snap0).Qrmodel.net in
  let denies0, _ = Net.count_policies net in
  Snapshot.publish store snap0;
  let p3 = Asn.origin_prefix 3 in
  let path_now () =
    match
      Query.eval
        (Option.get (Snapshot.current store))
        (Protocol.Path { prefix = p3; asn = 5 })
    with
    | Ok (Protocol.Paths { paths; _ }) -> paths
    | _ -> Alcotest.fail "path query failed"
  in
  let baseline = path_now () in
  let apply_one ev =
    match Serve.Churn.apply store [ Stream.Event.make ~ts_ms:0 ev ] with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "apply failed: %s" e
  in
  (* Link down in one call... *)
  apply_one (Stream.Event.Session_down { a = 4; b = 5 });
  check_bool "denies placed" true (fst (Net.count_policies net) > denies0);
  check_bool "rerouted while down" true (path_now () <> baseline);
  (* ...restored by a separate call. *)
  apply_one (Stream.Event.Session_up { a = 4; b = 5 });
  check_int "denies removed by the later apply" denies0
    (fst (Net.count_policies net));
  check_bool "baseline restored" true (path_now () = baseline);
  (* Same for a MOAS hijack started and ended in different calls. *)
  apply_one (Stream.Event.Hijack { prefix = p3; attacker = 5 });
  check_bool "hijack shifted routes" true (path_now () <> baseline);
  apply_one (Stream.Event.Hijack_end { prefix = p3; attacker = 5 });
  check_bool "hijack ended across applies" true (path_now () = baseline);
  match Snapshot.current store with
  | Some s -> Snapshot.retire s
  | None -> ()

(* What-if queries keep working after churn changed the served prefix
   set: the diff joins by prefix and the simulation covers the
   snapshot's own prefixes (the old positional diff raised once a
   hijack added one, poisoning every later what-if). *)
let whatif_after_churn_hijack () =
  let store = Snapshot.store () in
  Snapshot.publish store (build_snapshot ());
  let p3 = Asn.origin_prefix 3 in
  let sub = Prefix.make (Prefix.network p3) (Prefix.length p3 + 1) in
  (match
     Serve.Churn.apply store
       [
         Stream.Event.make ~ts_ms:0
           (Stream.Event.Hijack { prefix = sub; attacker = 5 });
       ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "hijack apply failed: %s" e);
  let snap = Option.get (Snapshot.current store) in
  check_int "hijacked prefix tracked" 6 (List.length (Snapshot.states snap));
  let net = (Snapshot.model snap).Qrmodel.net in
  let denies0, _ = Net.count_policies net in
  let run () =
    match Query.eval snap (Protocol.Whatif { a = 4; b = 5 }) with
    | Ok (Protocol.Whatif_summary _ as p) -> p
    | Ok _ -> Alcotest.fail "unexpected payload"
    | Error e -> Alcotest.failf "whatif after churn failed: %s" e
  in
  let r1 = run () in
  check_int "net restored exactly" denies0 (fst (Net.count_policies net));
  let r2 = run () in
  check_bool "repeatable" true (r1 = r2);
  Snapshot.retire snap

(* Concurrent writers serialize on the store: the later one builds on
   the earlier one's published snapshot, so neither's effect is
   silently discarded (before the fix the second publish overwrote the
   first's applied events while both returned Ok). *)
let concurrent_apply_reload () =
  let store = Snapshot.store () in
  let snap0 = build_snapshot () in
  let net = (Snapshot.model snap0).Qrmodel.net in
  let denies0, _ = Net.count_policies net in
  Snapshot.publish store snap0;
  let apply_r = ref (Error "unset") and reload_r = ref (Error "unset") in
  let ta =
    Thread.create
      (fun () ->
        apply_r :=
          Result.map ignore
            (Serve.Churn.apply store
               [
                 Stream.Event.make ~ts_ms:0
                   (Stream.Event.Session_down { a = 4; b = 5 });
               ]))
      ()
  in
  let tb =
    Thread.create
      (fun () -> reload_r := Result.map ignore (Serve.Churn.reload store))
      ()
  in
  Thread.join ta;
  Thread.join tb;
  (match !apply_r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "apply lost the race: %s" e);
  (match !reload_r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reload lost the race: %s" e);
  (* The applied down survived both publishes... *)
  check_bool "down still in force" true (fst (Net.count_policies net) > denies0);
  (* ...and is still matchable by its up. *)
  (match
     Serve.Churn.apply store
       [ Stream.Event.make ~ts_ms:10 (Stream.Event.Session_up { a = 4; b = 5 }) ]
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "restore failed: %s" e);
  check_int "clean restore" denies0 (fst (Net.count_policies net));
  match Snapshot.current store with
  | Some s -> Snapshot.retire s
  | None -> ()

(* The acceptance lock: queries keep succeeding while churn swaps the
   snapshot underneath them — zero dropped connections, zero errors. *)
let queries_across_reload () =
  with_server (fun path ->
      let errors = Atomic.make 0 in
      let queries = Atomic.make 0 in
      let worker _ () =
        match Server.connect (Server.Unix_path path) with
        | Error _ -> Atomic.incr errors
        | Ok conn ->
            for i = 0 to 39 do
              let req =
                match i mod 3 with
                | 0 -> Protocol.Ping
                | 1 -> Protocol.Path { prefix = Asn.origin_prefix 3; asn = 5 }
                | _ -> Protocol.Whatif { a = 4; b = 5 }
              in
              (match Server.request conn req with
              | Ok json
                when Json.member "ok" json = Some (Json.Bool true) ->
                  Atomic.incr queries
              | Ok _ | Error _ -> Atomic.incr errors);
              Thread.yield ()
            done;
            Server.close_conn conn
      in
      let threads = List.init 3 (fun i -> Thread.create (worker i) ()) in
      (* Meanwhile: repeated churn-triggered rebuild-and-swaps. *)
      let reloader = Result.get_ok (Server.connect (Server.Unix_path path)) in
      for _ = 1 to 5 do
        (match Server.request reloader Protocol.Reload with
        | Ok json when Json.member "ok" json = Some (Json.Bool true) -> ()
        | Ok json -> Alcotest.failf "reload refused: %s" (Json.to_string json)
        | Error e -> Alcotest.failf "reload failed: %s" e);
        Thread.delay 0.01
      done;
      Server.close_conn reloader;
      List.iter Thread.join threads;
      check_int "zero dropped or failed queries" 0 (Atomic.get errors);
      check_int "every query answered" 120 (Atomic.get queries))

(* -- immutability under load ------------------------------------------ *)

(* Concurrent mixed queries against one snapshot return bit-identical
   results to a sequential run, and the RD_CHECK ownership hook records
   zero violations: serving never mutates the published snapshot
   (what-if mutations are confined to the executor and reverted). *)
let concurrent_queries_immutable () =
  let prior = Ownership.current () in
  Ownership.reset ();
  Ownership.set Ownership.On;
  Fun.protect
    ~finally:(fun () ->
      Ownership.set prior;
      Ownership.reset ())
    (fun () ->
      let snap = build_snapshot ~jobs:4 () in
      let prefixes = List.map fst (Snapshot.states snap) in
      let reqs =
        Protocol.Ping
        :: Protocol.Whatif { a = 4; b = 5 }
        :: Protocol.Whatif { a = 1; b = 2 }
        :: List.concat_map
             (fun p ->
               [
                 Protocol.Path { prefix = p; asn = 5 };
                 Protocol.Catchment { egress = 1; prefix = Some p };
               ])
             prefixes
      in
      (* resume_hits counts warm resumes of the global engine counter
         during the what-if batch; fault-injection retries can shift it
         between runs, so normalize before comparing predictions. *)
      let normalize = function
        | Ok (Protocol.Whatif_summary s) ->
            Ok (Protocol.Whatif_summary { s with resume_hits = 0 })
        | r -> r
      in
      let expected = List.map (fun r -> normalize (Query.eval snap r)) reqs in
      let results = Array.make 4 [] in
      let worker i () =
        (* Each thread walks the battery from a different offset. *)
        let n = List.length reqs in
        let rotated =
          List.init n (fun k -> List.nth reqs ((k + i) mod n))
        in
        results.(i) <-
          List.map (fun r -> (r, normalize (Query.eval snap r))) rotated
      in
      let threads = List.init 4 (fun i -> Thread.create (worker i) ()) in
      List.iter Thread.join threads;
      let by_req = List.combine reqs expected in
      Array.iter
        (List.iter (fun (req, got) ->
             check_bool "concurrent result bit-identical" true
               (got = List.assoc req by_req)))
        results;
      check_int "zero ownership violations" 0 (Ownership.violation_count ()))

let suite =
  [
    Alcotest.test_case "json roundtrip" `Quick json_roundtrip;
    Alcotest.test_case "json rejects garbage" `Quick json_rejects_garbage;
    Alcotest.test_case "request roundtrip" `Quick request_roundtrip;
    Alcotest.test_case "framing" `Quick framing;
    Alcotest.test_case "read timeout" `Quick read_timeout;
    Alcotest.test_case "snapshot queries" `Quick snapshot_queries;
    Alcotest.test_case "whatif query restores" `Quick whatif_query_restores;
    Alcotest.test_case "run_batch orders results" `Quick
      run_batch_orders_results;
    Alcotest.test_case "server loopback" `Quick server_loopback;
    Alcotest.test_case "server shutdown stops" `Quick server_shutdown_stops;
    Alcotest.test_case "reload swaps snapshot" `Quick reload_swaps_snapshot;
    Alcotest.test_case "churn apply publishes" `Quick churn_apply_publishes;
    Alcotest.test_case "client disconnect keeps serving" `Quick
      client_disconnect_keeps_serving;
    Alcotest.test_case "churn pairs across applies" `Quick
      churn_pairs_across_applies;
    Alcotest.test_case "whatif after churn hijack" `Quick
      whatif_after_churn_hijack;
    Alcotest.test_case "concurrent apply and reload" `Quick
      concurrent_apply_reload;
    Alcotest.test_case "queries across reload" `Quick queries_across_reload;
    Alcotest.test_case "concurrent queries immutable" `Quick
      concurrent_queries_immutable;
  ]
