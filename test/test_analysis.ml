(* Tests for the Analysis subsystem: every lint rule triggered by a
   hand-built pathological net, clean models linting clean, and the
   RD_CHECK mutation-discipline checker (ownership, batch scope,
   generation/touched bookkeeping). *)

open Bgp
module Net = Simulator.Net
module Pool = Simulator.Pool
module Qrmodel = Asmodel.Qrmodel
module Lint = Analysis.Lint
module Report = Analysis.Report
module Ownership = Analysis.Ownership

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let has = Report.has_rule

(* A fresh two-node net with one session, outside any model. *)
let two_nodes () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  ignore (Net.connect net a b);
  (net, a, b)

let triangle_model () =
  Qrmodel.initial (Topology.Asgraph.of_edges [ (1, 2); (2, 3); (1, 3) ])

let node_of net asn = List.hd (Net.nodes_of_as net asn)

let session net a b = Option.get (Net.find_session net a b)

(* -- report ---------------------------------------------------------- *)

let report_structure () =
  let f sev rule =
    { Report.severity = sev; rule; location = Report.Network;
      message = "m"; hint = "h" }
  in
  let r = Report.of_findings [ f Report.Warn "w1"; f Report.Error "e1" ] in
  check_int "errors" 1 (Report.error_count r);
  check_int "warnings" 1 (Report.warn_count r);
  check_bool "not clean" false (Report.is_clean r);
  check_bool "has e1" true (has r "e1");
  check_bool "no e2" false (has r "e2");
  (* Errors sort first regardless of insertion order. *)
  match Report.findings r with
  | first :: _ -> check_bool "error first" true (first.Report.severity = Report.Error)
  | [] -> Alcotest.fail "empty report"

(* -- structural lint -------------------------------------------------- *)

let clean_net () =
  let net, _, _ = two_nodes () in
  check_bool "clean" true (Lint.check_net net |> Report.is_clean);
  check_int "no findings" 0 (List.length (Report.findings (Lint.check_net net)))

let asymmetric_session () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let c = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect net a b);
  (* Dangling half toward [c], with no mirror at [c]. *)
  ignore (Net.Unsafe.push_half_session net a ~peer:c ());
  let r = Lint.check_net net in
  check_bool "asymmetric" true (has r "session-asymmetric");
  check_bool "not self" false (has r "session-self");
  check_bool "not duplicate" false (has r "session-duplicate");
  check_bool "errors" false (Report.is_clean r)

let broken_round_trip () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let c = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect net a b);
  ignore (Net.connect net a c);
  ignore (Net.connect net b c);
  (* Point a's half toward b at b's half toward c instead. *)
  Net.Unsafe.set_peer_session net a (session net a b) 1;
  let r = Lint.check_net net in
  check_bool "asymmetric" true (has r "session-asymmetric")

let self_session () =
  let net, a, _ = two_nodes () in
  let s = Net.Unsafe.push_half_session net a ~peer:a () in
  (* Mirror it onto itself so only the self rule fires. *)
  Net.Unsafe.set_peer_session net a s s;
  let r = Lint.check_net net in
  check_bool "self" true (has r "session-self");
  check_bool "not asymmetric" false (has r "session-asymmetric")

let duplicate_session () =
  let net, a, b = two_nodes () in
  ignore (Net.Unsafe.push_half_session net a ~peer:b ~peer_session:0 ());
  let r = Lint.check_net net in
  check_bool "duplicate" true (has r "session-duplicate")

let session_count_drift () =
  let net, _, _ = two_nodes () in
  Net.Unsafe.set_session_count net 5;
  let r = Lint.check_net net in
  check_bool "count" true (has r "session-count")

let membership_broken () =
  let net, a, _ = two_nodes () in
  Net.Unsafe.detach_from_as net a;
  let r = Lint.check_net net in
  check_bool "membership" true (has r "as-membership");
  check_bool "partition count" true (has r "as-membership-count")

let kind_mismatch () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 1) in
  let ia = Net.Unsafe.push_half_session net a ~peer:b ~kind:Net.Ebgp () in
  let ib = Net.Unsafe.push_half_session net b ~peer:a ~kind:Net.Ibgp () in
  Net.Unsafe.set_peer_session net a ia ib;
  Net.Unsafe.set_peer_session net b ib ia;
  let r = Lint.check_net net in
  check_bool "kind mismatch" true (has r "session-kind-mismatch");
  check_bool "symmetric otherwise" false (has r "session-asymmetric")

let class_mismatch () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let cust = Simulator.Relclass.customer in
  (* customer/customer is not a dual pairing. *)
  ignore (Net.connect net ~class_ab:cust ~class_ba:cust a b);
  let r = Lint.check_net net in
  check_bool "class mismatch" true (has r "session-class-mismatch");
  (* It is a Warn, not an Error. *)
  check_bool "still clean" true (Report.is_clean r)

(* -- policy lint ------------------------------------------------------ *)

let orphan_rules () =
  let m = triangle_model () in
  let net = m.Qrmodel.net in
  let n1 = node_of net 1 and n2 = node_of net 2 and n3 = node_of net 3 in
  let stray = Prefix.of_string_exn "99.0.0.0/8" in
  (* Different sessions, so the lpref/MED conflict rule stays quiet. *)
  Net.set_import_med net n1 (session net n1 n2) stray 0;
  Net.set_import_lpref_for net n1 (session net n1 n3) stray 200;
  Net.deny_export net n1 (session net n1 n2) stray;
  let r = Lint.check m in
  check_bool "orphan med" true (has r "orphan-med");
  check_bool "orphan lpref" true (has r "orphan-lpref");
  check_bool "orphan deny" true (has r "orphan-deny");
  (* Orphans are warnings: dead weight, not corruption. *)
  check_bool "clean of errors" true (Report.is_clean r)

let lpref_med_conflict () =
  let m = triangle_model () in
  let net = m.Qrmodel.net in
  let n1 = node_of net 1 and n2 = node_of net 2 in
  let s = session net n1 n2 in
  let p3 = Asn.origin_prefix 3 in
  Net.set_import_med net n1 s p3 0;
  Net.set_import_lpref_for net n1 s p3 200;
  let r = Lint.check m in
  check_bool "conflict" true (has r "lpref-med-conflict");
  check_bool "is an error" false (Report.is_clean r)

let shadowed_deny () =
  (* Two disconnected components: a deny in the far component can never
     see the near component's prefix. *)
  let m = Qrmodel.initial (Topology.Asgraph.of_edges [ (1, 2); (3, 4) ]) in
  let net = m.Qrmodel.net in
  let n3 = node_of net 3 and n4 = node_of net 4 in
  let p1 = Asn.origin_prefix 1 in
  Net.deny_export net n3 (session net n3 n4) p1;
  let r = Lint.check m in
  check_bool "shadowed" true (has r "shadowed-deny");
  check_bool "unreachable reported" true (has r "unreachable")

let redundant_deny () =
  let m = triangle_model () in
  let net = m.Qrmodel.net in
  let n1 = node_of net 1 and n2 = node_of net 2 in
  Net.set_export_matrix net (fun ~learned_class:_ ~to_class:_ -> false);
  Net.deny_export net n1 (session net n1 n2) (Asn.origin_prefix 3);
  let r = Lint.check m in
  check_bool "redundant" true (has r "redundant-deny")

let origin_missing () =
  let m = triangle_model () in
  let m =
    { m with Qrmodel.prefixes =
        (Prefix.of_string_exn "99.0.0.0/8", 99) :: m.Qrmodel.prefixes }
  in
  let r = Lint.check m in
  check_bool "origin missing" true (has r "origin-missing");
  check_bool "is an error" false (Report.is_clean r)

let dispute_wheel () =
  let m = triangle_model () in
  let net = m.Qrmodel.net in
  let p = Asn.origin_prefix 1 in
  let prefer a b =
    let na = node_of net a in
    Net.set_import_lpref_for net na (session net na (node_of net b)) p 200
  in
  (* 1 prefers via 2, 2 via 3, 3 via 1: the Bad-Gadget shape. *)
  prefer 1 2;
  prefer 2 3;
  prefer 3 1;
  let r = Lint.check m in
  check_bool "dispute wheel" true (has r "dispute-wheel");
  (* Breaking the cycle clears the finding. *)
  let n3 = node_of net 3 in
  Net.clear_import_lpref_for net n3 (session net n3 (node_of net 1)) p;
  check_bool "acyclic clean" false (has (Lint.check m) "dispute-wheel")

let clean_model () =
  let r = Lint.check (triangle_model ()) in
  check_int "no findings at all" 0 (List.length (Report.findings r))

(* -- ownership / RD_CHECK --------------------------------------------- *)

let with_checker f =
  let prior = Ownership.current () in
  Ownership.reset ();
  Ownership.set Ownership.On;
  Fun.protect
    ~finally:(fun () ->
      Ownership.set prior;
      Ownership.reset ())
    f

let batch_marker () =
  check_bool "idle" false (Pool.batch_active ());
  let inside = Pool.map ~jobs:1 (fun _ -> Pool.batch_active ()) [ () ] in
  check_bool "inside batch" true (List.for_all Fun.id inside);
  check_bool "idle again" false (Pool.batch_active ())

let touched_bookkeeping () =
  let net, a, b = two_nodes () in
  let p = Asn.origin_prefix 2 in
  Ownership.reset ();
  (* A policy event naming a node the touched set never saw. *)
  Ownership.record net (Net.Policy { rule = "test"; prefix = p; node = 99 });
  check_int "unrecorded node flagged" 1 (Ownership.violation_count ());
  (* A real mutator records its node, so auditing it is silent. *)
  Net.deny_export net a (session net a b) p;
  Ownership.record net (Net.Policy { rule = "test"; prefix = p; node = a });
  check_int "recorded node passes" 1 (Ownership.violation_count ());
  Ownership.reset ()

let generation_bookkeeping () =
  let net, _, _ = two_nodes () in
  Ownership.reset ();
  let g = Net.generation net in
  Ownership.record net (Net.Structural { rule = "test"; generation = g });
  check_int "first event passes" 0 (Ownership.violation_count ());
  (* Same generation again: the mutator forgot to bump. *)
  Ownership.record net (Net.Structural { rule = "test"; generation = g });
  check_int "stale generation flagged" 1 (Ownership.violation_count ());
  Ownership.reset ()

let cross_domain_mutation () =
  with_checker (fun () ->
      let net, a, b = two_nodes () in
      let p = Asn.origin_prefix 2 in
      let s = session net a b in
      (* Benign mutation from the owning domain: no violation. *)
      Net.set_import_med net a s p 50;
      check_int "owner mutation clean" 0 (Ownership.violation_count ());
      (* Injected fault 1: mutation from inside a pool batch. *)
      ignore (Pool.map ~jobs:1 (fun v -> Net.set_import_med net a s p v) [ 1 ]);
      check_bool "batch mutation caught" true (Ownership.violation_count () > 0);
      check_bool "flagged as in-batch" true
        (List.exists (fun v -> v.Ownership.in_batch) (Ownership.violations ()));
      (* Injected fault 2: mutation from a foreign domain. *)
      let d = Domain.spawn (fun () -> Net.set_import_med net a s p 9) in
      Domain.join d;
      check_bool "cross-domain caught" true
        (List.exists
           (fun v ->
             not v.Ownership.in_batch
             && String.length v.Ownership.detail >= 12
             && String.sub v.Ownership.detail 0 12 = "cross-domain")
           (Ownership.violations ())))

let refine_clean_under_check () =
  with_checker (fun () ->
      let graph =
        Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]
      in
      let entry o origin path_list =
        {
          Rib.op = { Rib.op_ip = Asn.router_ip o 0; op_as = o };
          prefix = Asn.origin_prefix origin;
          path = Aspath.of_list path_list;
        }
      in
      let training =
        Rib.of_entries
          [ entry 1 3 [ 1; 2; 3 ]; entry 1 4 [ 1; 4 ]; entry 1 4 [ 1; 5; 4 ] ]
      in
      let m = Qrmodel.initial graph in
      let r = Refine.Refiner.refine m ~training in
      check_bool "converged" true r.Refine.Refiner.converged;
      (* The phased refiner keeps all mutation sequential and between
         batches: the checker must stay silent... *)
      check_int "no violations" 0 (Ownership.violation_count ());
      (* ...and the model it grew must lint clean, warnings included. *)
      let report = Lint.check m in
      check_int "no findings" 0 (List.length (Report.findings report)))

(* -- happens-before race detector (RD_CHECK=race) --------------------- *)

module Race = Analysis.Race
module Audit = Analysis.Audit
module Engine = Simulator.Engine

let with_race f =
  let prior = Ownership.current () in
  Ownership.reset ();
  Race.reset ();
  Ownership.set Ownership.Race;
  Fun.protect
    ~finally:(fun () ->
      Ownership.set prior;
      Ownership.reset ();
      Race.reset ())
    f

(* Raw Domain.spawn/join with the ordering edges published to the
   probe, mirroring what Pool does — so a test can run code in another
   domain without manufacturing a false race. *)
let sync_uid = ref 0

let spawn_ordered f =
  incr sync_uid;
  let chan = Printf.sprintf "test.sync.%d" !sync_uid in
  Obs.Probe.release ~chan:(chan ^ ".spawn");
  let d =
    Domain.spawn (fun () ->
        Obs.Probe.acquire ~chan:(chan ^ ".spawn");
        let r = f () in
        Obs.Probe.release ~chan:(chan ^ ".join");
        r)
  in
  (d, chan)

let join_ordered (d, chan) =
  let r = Domain.join d in
  Obs.Probe.acquire ~chan:(chan ^ ".join");
  r

(* Satellite: the seeded-race negative control.  A mutation from a
   foreign domain with no sync edge must fire the detector under
   [race]... *)
let seeded_race_detected () =
  with_race (fun () ->
      let net, a, b = two_nodes () in
      let p = Asn.origin_prefix 2 in
      let s = session net a b in
      Net.deny_export net a s p;
      check_int "no race from the owning domain" 0 (Race.race_count ());
      Net.Unsafe.from_foreign_domain net (fun net ->
          Net.set_import_med net a s p 7);
      check_bool "foreign mutation detected" true (Race.race_count () > 0);
      (match Race.races () with
      | [] -> Alcotest.fail "no race recorded"
      | r :: _ ->
          check_bool "write conflict" true
            (r.Race.conflict = "write-write" || r.Race.conflict = "read-write");
          check_bool "two domains involved" true
            (r.Race.prior.Race.domain <> r.Race.current.Race.domain));
      check_int "findings mirror races" (Race.race_count ())
        (List.length (Race.findings ())))

(* ...and the ownership checker must catch the same helper under [on]. *)
let seeded_race_ownership () =
  with_checker (fun () ->
      let net, a, b = two_nodes () in
      let p = Asn.origin_prefix 2 in
      let s = session net a b in
      Net.set_import_med net a s p 1;
      check_int "owner mutation clean" 0 (Ownership.violation_count ());
      Net.Unsafe.from_foreign_domain net (fun net ->
          Net.set_import_med net a s p 9);
      check_bool "cross-domain ownership violation" true
        (List.exists
           (fun v ->
             String.length v.Ownership.detail >= 12
             && String.sub v.Ownership.detail 0 12 = "cross-domain")
           (Ownership.violations ())))

(* Pool-ordered cross-domain work is exactly what the published edges
   legitimize: a parallel simulation batch must be silent. *)
let pool_clean_under_race () =
  with_race (fun () ->
      let m = triangle_model () in
      let net = m.Qrmodel.net in
      let prefixes = List.map fst m.Qrmodel.prefixes in
      let states, _ =
        Pool.simulate ~jobs:4
          ~sim:(fun p ->
            Engine.simulate net ~prefix:p
              ~originators:(Qrmodel.originators m p))
          prefixes
      in
      check_int "batch raced nothing" 0 (Race.race_count ());
      check_int "all prefixes simulated" (List.length prefixes)
        (List.length states);
      (* A second batch reuses worker slots: the join edges must carry
         the first batch's history forward. *)
      let _ =
        Pool.simulate ~jobs:4
          ~sim:(fun p ->
            Engine.simulate net ~prefix:p
              ~originators:(Qrmodel.originators m p))
          prefixes
      in
      check_int "second batch clean too" 0 (Race.race_count ()))

(* Satellite: two domains racing the same-generation CSR rebuild must
   publish equivalent structures and zero findings (the one declared
   benign publish race). *)
let concurrent_csr_rebuild () =
  with_race (fun () ->
      let net, _, _ = two_nodes () in
      let gate = Atomic.make 0 in
      let worker () =
        Atomic.incr gate;
        while Atomic.get gate < 2 do
          Domain.cpu_relax ()
        done;
        Net.csr net
      in
      let h1 = spawn_ordered worker in
      let h2 = spawn_ordered worker in
      let c1 = join_ordered h1 in
      let c2 = join_ordered h2 in
      check_bool "same generation" true
        (Net.Csr.generation c1 = Net.Csr.generation c2);
      check_bool "bit-identical structures" true
        (c1 == c2
        || (Net.Csr.off c1 = Net.Csr.off c2
           && Net.Csr.peer c1 = Net.Csr.peer c2
           && Net.Csr.rev c1 = Net.Csr.rev c2
           && Net.Csr.reverse_local c1 = Net.Csr.reverse_local c2
           && Net.Csr.kinds c1 = Net.Csr.kinds c2
           && Net.Csr.classes c1 = Net.Csr.classes c2
           && Net.Csr.lprefs c1 = Net.Csr.lprefs c2
           && Net.Csr.carries c1 = Net.Csr.carries c2
           && Net.Csr.rr_clients c1 = Net.Csr.rr_clients c2
           && Net.Csr.asns c1 = Net.Csr.asns c2
           && Net.Csr.ips c1 = Net.Csr.ips c2));
      check_int "zero race findings" 0 (Race.race_count ());
      (* the winner is now cached for everyone *)
      let c3 = Net.csr net in
      check_bool "one structure published" true (c3 == c1 || c3 == c2))

(* The allowlist suppresses declared objects and nothing else. *)
let allowlist_benign () =
  with_race (fun () ->
      let hit obj site =
        let d = Domain.spawn (fun () -> Obs.Probe.write ~obj ~site) in
        Domain.join d
      in
      hit "test#0/csr" "w1";
      hit "test#0/csr" "w2";
      check_int "declared object suppressed" 0 (Race.race_count ());
      check_bool "suppression counted" true (Race.benign_count () >= 1);
      hit "test#0/slab" "w3";
      hit "test#0/slab" "w4";
      check_bool "undeclared object reported" true (Race.race_count () >= 1))

(* -- structural audit -------------------------------------------------- *)

let audit_clean () =
  let m = triangle_model () in
  let net = m.Qrmodel.net in
  check_int "csr audit clean" 0 (List.length (Audit.csr net));
  List.iter
    (fun (p, _) ->
      let st = Qrmodel.simulate m p in
      check_bool "converged" true (Engine.converged st);
      check_int "state audit clean" 0 (List.length (Audit.state net st)))
    m.Qrmodel.prefixes;
  check_int "intern audit clean" 0 (List.length (Audit.intern_integrity ()))

let audit_catches_corruption () =
  let net, a, b = two_nodes () in
  ignore (Net.csr net);
  (* Corrupt the live record under the cached index: the cross-check
     must notice the disagreement without a generation bump. *)
  Net.Unsafe.set_peer_session net a (session net a b) 7;
  let fs = Audit.csr net in
  check_bool "corruption surfaces" true
    (List.exists
       (fun f ->
         f.Report.rule = "audit-csr-slot" || f.Report.rule = "audit-csr-rev")
       fs)

let audit_stale_state () =
  let m = triangle_model () in
  let net = m.Qrmodel.net in
  let p = fst (List.hd m.Qrmodel.prefixes) in
  let st = Qrmodel.simulate m p in
  (* A structural mutation invalidates the state: the audit must warn
     and stand down rather than compare stale offsets. *)
  let x = Net.add_node net ~asn:99 ~ip:(Asn.router_ip 99 0) in
  ignore x;
  let fs = Audit.state net st in
  check_bool "stale state warned" true
    (List.exists (fun f -> f.Report.rule = "audit-stale-state") fs);
  check_bool "only the warning" true
    (List.for_all (fun f -> f.Report.severity = Report.Warn) fs)

(* -- sentinel source lint ---------------------------------------------- *)

let write_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let sentinel_lint_seeded () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "sentinel_lint_%d" (Unix.getpid ()))
  in
  (try Unix.mkdir dir 0o700 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  write_file (Filename.concat dir "bad.ml")
    "let bad r = r = Rattr.no_route\n\
     let also_bad r = Rattr.no_route <> r\n\
     let fine r = r == Rattr.no_route\n\
     let fine2 r = r != no_route\n\
     (* comment: no_route = masked *)\n\
     let s = \"no_route = masked too\"\n\
     let no_route = 3\n";
  let fs = Audit.sentinel_lint ~root:dir () in
  check_int "both structural compares flagged" 2 (List.length fs);
  List.iter
    (fun f -> check_bool "rule" true (f.Report.rule = "sentinel-compare"))
    fs;
  Sys.remove (Filename.concat dir "bad.ml");
  (try Unix.rmdir dir with Unix.Unix_error (_, _, _) -> ())

let sentinel_lint_real_sources () =
  (* The simulator sources themselves must be clean; when the walk-up
     cannot find them (installed test binary) the lint returns []. *)
  check_int "lib/simulator clean" 0 (List.length (Audit.sentinel_lint ()))

let suite =
  [
    Alcotest.test_case "report structure" `Quick report_structure;
    Alcotest.test_case "clean net" `Quick clean_net;
    Alcotest.test_case "asymmetric session" `Quick asymmetric_session;
    Alcotest.test_case "broken round trip" `Quick broken_round_trip;
    Alcotest.test_case "self session" `Quick self_session;
    Alcotest.test_case "duplicate session" `Quick duplicate_session;
    Alcotest.test_case "session count drift" `Quick session_count_drift;
    Alcotest.test_case "membership broken" `Quick membership_broken;
    Alcotest.test_case "kind mismatch" `Quick kind_mismatch;
    Alcotest.test_case "class mismatch" `Quick class_mismatch;
    Alcotest.test_case "orphan rules" `Quick orphan_rules;
    Alcotest.test_case "lpref med conflict" `Quick lpref_med_conflict;
    Alcotest.test_case "shadowed deny" `Quick shadowed_deny;
    Alcotest.test_case "redundant deny" `Quick redundant_deny;
    Alcotest.test_case "origin missing" `Quick origin_missing;
    Alcotest.test_case "dispute wheel" `Quick dispute_wheel;
    Alcotest.test_case "clean model" `Quick clean_model;
    Alcotest.test_case "batch marker" `Quick batch_marker;
    Alcotest.test_case "touched bookkeeping" `Quick touched_bookkeeping;
    Alcotest.test_case "generation bookkeeping" `Quick generation_bookkeeping;
    Alcotest.test_case "cross domain mutation" `Quick cross_domain_mutation;
    Alcotest.test_case "refine clean under check" `Quick refine_clean_under_check;
    Alcotest.test_case "seeded race detected" `Quick seeded_race_detected;
    Alcotest.test_case "seeded race ownership" `Quick seeded_race_ownership;
    Alcotest.test_case "pool clean under race" `Quick pool_clean_under_race;
    Alcotest.test_case "concurrent csr rebuild" `Quick concurrent_csr_rebuild;
    Alcotest.test_case "allowlist benign" `Quick allowlist_benign;
    Alcotest.test_case "audit clean" `Quick audit_clean;
    Alcotest.test_case "audit catches corruption" `Quick audit_catches_corruption;
    Alcotest.test_case "audit stale state" `Quick audit_stale_state;
    Alcotest.test_case "sentinel lint seeded" `Quick sentinel_lint_seeded;
    Alcotest.test_case "sentinel lint real sources" `Quick sentinel_lint_real_sources;
  ]
