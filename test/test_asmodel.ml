(* Tests for the quasi-router model, serialization, baselines, what-if. *)

open Bgp
module Net = Simulator.Net
module Qrmodel = Asmodel.Qrmodel

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let initial_model () =
  let m = Qrmodel.initial graph in
  check_int "one quasi-router per AS" (Topology.Asgraph.num_nodes graph)
    (Net.node_count m.Qrmodel.net);
  check_int "one session per edge"
    (2 * Topology.Asgraph.num_edges graph)
    (Net.session_count m.Qrmodel.net);
  check_int "one prefix per AS" (Topology.Asgraph.num_nodes graph)
    (List.length m.Qrmodel.prefixes);
  check_bool "origin lookup" true (Qrmodel.origin_of m (Asn.origin_prefix 3) = Some 3);
  check_bool "unknown prefix" true
    (Qrmodel.origin_of m (Prefix.of_string_exn "99.0.0.0/8") = None);
  check_int "originators" 1 (List.length (Qrmodel.originators m (Asn.origin_prefix 3)))

let model_simulation () =
  let m = Qrmodel.initial graph in
  let st = Qrmodel.simulate m (Asn.origin_prefix 3) in
  check_bool "converged" true (Simulator.Engine.converged st);
  (* AS 5 reaches 3 via 4 (shortest). *)
  let n5 = List.hd (Net.nodes_of_as m.Qrmodel.net 5) in
  check_bool "shortest" true
    (Simulator.Engine.best_full_path m.Qrmodel.net st n5 = Some [| 5; 4; 3 |])

let histogram () =
  let m = Qrmodel.initial graph in
  check_bool "all size 1" true (Qrmodel.quasi_router_histogram m = [ (1, 5) ]);
  let n1 = List.hd (Net.nodes_of_as m.Qrmodel.net 1) in
  ignore (Net.duplicate_node m.Qrmodel.net n1);
  check_bool "after duplication" true
    (Qrmodel.quasi_router_histogram m = [ (1, 4); (2, 1) ]);
  check_int "count for AS1" 2 (Qrmodel.quasi_router_count m 1);
  check_int "total" 6 (Qrmodel.total_quasi_routers m)

let serialize_roundtrip () =
  let m = Qrmodel.initial graph in
  (* Decorate with policies and a duplicate so the round-trip is
     non-trivial. *)
  let n1 = List.hd (Net.nodes_of_as m.Qrmodel.net 1) in
  let n2 = List.hd (Net.nodes_of_as m.Qrmodel.net 2) in
  let s12 = Option.get (Net.find_session m.Qrmodel.net n1 n2) in
  Net.deny_export m.Qrmodel.net n1 s12 (Asn.origin_prefix 3);
  Net.set_import_med m.Qrmodel.net n1 s12 (Asn.origin_prefix 4) 0;
  ignore (Net.duplicate_node m.Qrmodel.net n1);
  let lines = Asmodel.Serialize.to_lines m in
  match Asmodel.Serialize.of_lines lines with
  | Error e -> Alcotest.failf "reload failed: %s" e
  | Ok m2 ->
      check_int "node count" (Net.node_count m.Qrmodel.net)
        (Net.node_count m2.Qrmodel.net);
      check_int "session count" (Net.session_count m.Qrmodel.net)
        (Net.session_count m2.Qrmodel.net);
      check_bool "prefixes" true (m.Qrmodel.prefixes = m2.Qrmodel.prefixes);
      (* Policies survived. *)
      let n1' = List.hd (Net.nodes_of_as m2.Qrmodel.net 1) in
      let n2' = List.hd (Net.nodes_of_as m2.Qrmodel.net 2) in
      let s12' = Option.get (Net.find_session m2.Qrmodel.net n1' n2') in
      check_bool "deny survived" true
        (Net.export_denied m2.Qrmodel.net n1' s12' (Asn.origin_prefix 3));
      check_bool "med survived" true
        (Net.import_med m2.Qrmodel.net n1' s12' (Asn.origin_prefix 4) = Some 0);
      (* Behaviour identical: same best paths for every prefix. *)
      List.iter
        (fun (p, _) ->
          let st = Qrmodel.simulate m p and st2 = Qrmodel.simulate m2 p in
          List.iter
            (fun asn ->
              check_bool "same selected paths" true
                (Simulator.Engine.selected_paths m.Qrmodel.net st asn
                = Simulator.Engine.selected_paths m2.Qrmodel.net st2 asn))
            (Topology.Asgraph.nodes graph))
        m.Qrmodel.prefixes

let serialize_rejects_garbage () =
  check_bool "bad keyword" true
    (Result.is_error (Asmodel.Serialize.of_lines [ "frobnicate 1 2" ]));
  check_bool "bad edge" true
    (Result.is_error
       (Asmodel.Serialize.of_lines [ "node 0 1 1.0.0.1"; "edge 0 7" ]));
  check_bool "deny without session" true
    (Result.is_error
       (Asmodel.Serialize.of_lines
          [ "node 0 1 1.0.0.1"; "node 1 2 2.0.0.1"; "deny 0 1 10.0.0.0/24" ]))

let baseline_policies_model () =
  let rels = Topology.Relationships.infer graph [ Aspath.of_list [ 3; 2; 1; 4 ] ] in
  let m = Asmodel.Baseline.with_policies graph rels in
  check_int "one router per AS" 5 (Net.node_count m.Qrmodel.net);
  (* Import preferences follow the relationship classes. *)
  let n2 = List.hd (Net.nodes_of_as m.Qrmodel.net 2) in
  let n1 = List.hd (Net.nodes_of_as m.Qrmodel.net 1) in
  let s21 = Option.get (Net.find_session m.Qrmodel.net n2 n1) in
  let expected =
    Simulator.Relclass.lpref
      (Asmodel.Baseline.class_of_rel (Topology.Relationships.rel rels 2 1))
  in
  check_bool "lpref from inferred class" true
    (Net.import_lpref m.Qrmodel.net n2 s21 = Some expected)

let whatif_link_removal () =
  let m = Qrmodel.initial graph in
  let before = Asmodel.Whatif.snapshot m in
  let touched = Asmodel.Whatif.disable_as_link m 4 5 in
  check_int "two half-sessions" 2 touched;
  let after = Asmodel.Whatif.snapshot m in
  let diff = Asmodel.Whatif.diff before after in
  check_bool "something changed" true (diff.Asmodel.Whatif.prefixes_affected > 0);
  (* AS 5 still reaches 3: via 1 now. *)
  let st = Qrmodel.simulate m (Asn.origin_prefix 3) in
  let n5 = List.hd (Net.nodes_of_as m.Qrmodel.net 5) in
  check_bool "rerouted" true
    (Simulator.Engine.best_full_path m.Qrmodel.net st n5 = Some [| 5; 1; 2; 3 |]);
  (* Restore. *)
  ignore (Asmodel.Whatif.enable_as_link m 4 5);
  let restored = Asmodel.Whatif.snapshot m in
  let diff_back = Asmodel.Whatif.diff before restored in
  check_int "fully restored (no refinement filters involved)" 0
    diff_back.Asmodel.Whatif.prefixes_affected

let whatif_unknown_link () =
  let m = Qrmodel.initial graph in
  check_int "no session" 0 (Asmodel.Whatif.disable_as_link m 2 5)

(* The revert must be an exact save/restore: a deny placed on the link's
   sessions before the what-if (as the refiner does) survives the
   disable/enable round trip, and predictions are bit-identical. *)
let whatif_roundtrip_preserves_filters () =
  let m = Qrmodel.initial graph in
  let net = m.Qrmodel.net in
  let n4 = List.hd (Net.nodes_of_as net 4) in
  let n5 = List.hd (Net.nodes_of_as net 5) in
  let s45 = Option.get (Net.find_session net n4 n5) in
  (* A refiner-style filter on the very link the what-if toggles. *)
  Net.deny_export net n4 s45 (Asn.origin_prefix 3);
  let before = Asmodel.Whatif.snapshot m in
  let denies_before, _ = Net.count_policies net in
  ignore (Asmodel.Whatif.disable_as_link m 4 5);
  ignore (Asmodel.Whatif.enable_as_link m 4 5);
  check_bool "refiner filter survived" true
    (Net.export_denied net n4 s45 (Asn.origin_prefix 3));
  let denies_after, _ = Net.count_policies net in
  check_int "deny count restored" denies_before denies_after;
  let restored = Asmodel.Whatif.snapshot m in
  let diff = Asmodel.Whatif.diff before restored in
  check_int "predictions identical" 0 diff.Asmodel.Whatif.prefixes_affected

(* Double disable of the same link must not overwrite the saved set with
   one that includes the what-if's own denies. *)
let whatif_double_disable () =
  let m = Qrmodel.initial graph in
  let net = m.Qrmodel.net in
  let denies_before, _ = Net.count_policies net in
  ignore (Asmodel.Whatif.disable_as_link m 4 5);
  ignore (Asmodel.Whatif.disable_as_link m 4 5);
  ignore (Asmodel.Whatif.enable_as_link m 4 5);
  let denies_after, _ = Net.count_policies net in
  check_int "no leaked denies" denies_before denies_after

(* diff joins by prefix, not position: reordered or mismatched prefix
   sets (churn adds and drops prefixes between snapshots) must diff
   cleanly instead of raising from a positional combine. *)
let whatif_diff_keyed () =
  let m = Qrmodel.initial graph in
  let all = List.map fst m.Qrmodel.prefixes in
  let before = Asmodel.Whatif.snapshot ~prefixes:all m in
  let reordered = Asmodel.Whatif.snapshot ~prefixes:(List.rev all) m in
  let d = Asmodel.Whatif.diff before reordered in
  check_int "reorder is no change" 0 d.Asmodel.Whatif.prefixes_affected;
  (* A prefix missing from the after set reads as every AS losing it. *)
  let after = Asmodel.Whatif.snapshot ~prefixes:(List.tl all) m in
  let d2 = Asmodel.Whatif.diff before after in
  check_int "one prefix affected" 1 d2.Asmodel.Whatif.prefixes_affected;
  (match d2.Asmodel.Whatif.changes with
  | [ c ] ->
      check_bool "the dropped prefix" true
        (Prefix.equal c.Asmodel.Whatif.prefix (List.hd all));
      check_bool "every AS lost it" true
        (c.Asmodel.Whatif.ases_lost <> []
        && c.Asmodel.Whatif.ases_lost = c.Asmodel.Whatif.ases_changed)
  | _ -> Alcotest.fail "expected exactly one change");
  (* And one only in the after set reads as gained, not an exception. *)
  let d3 = Asmodel.Whatif.diff after before in
  check_int "gain counted" 1 d3.Asmodel.Whatif.prefixes_affected

let suite =
  [
    Alcotest.test_case "initial model" `Quick initial_model;
    Alcotest.test_case "model simulation" `Quick model_simulation;
    Alcotest.test_case "quasi-router histogram" `Quick histogram;
    Alcotest.test_case "serialize roundtrip" `Quick serialize_roundtrip;
    Alcotest.test_case "serialize rejects garbage" `Quick serialize_rejects_garbage;
    Alcotest.test_case "baseline policies model" `Quick baseline_policies_model;
    Alcotest.test_case "whatif link removal" `Quick whatif_link_removal;
    Alcotest.test_case "whatif unknown link" `Quick whatif_unknown_link;
    Alcotest.test_case "whatif roundtrip preserves filters" `Quick
      whatif_roundtrip_preserves_filters;
    Alcotest.test_case "whatif double disable" `Quick whatif_double_disable;
    Alcotest.test_case "whatif diff keyed by prefix" `Quick whatif_diff_keyed;
  ]
