(* Tests for the per-prefix propagation engine. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module R = Simulator.Rattr

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let p6 = Asn.origin_prefix 6

(* Line topology 1 - 2 - 3, prefix originated at 3 (node ids 0,1,2). *)
let line () =
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect net n1 n2);
  ignore (Net.connect net n2 n3);
  (net, n1, n2, n3)

let propagation () =
  let net, n1, n2, n3 = line () in
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "converged" true (Engine.converged st);
  check_bool "origin selects itself" true
    (Engine.best_full_path net st n3 = Some [| 3 |]);
  check_bool "middle" true (Engine.best_full_path net st n2 = Some [| 2; 3 |]);
  check_bool "end" true (Engine.best_full_path net st n1 = Some [| 1; 2; 3 |])

let shortest_path_choice () =
  (* Square: 1-2-4 and 1-3-4 plus direct 1-4; direct wins. *)
  let net = Net.create () in
  let n = Array.init 4 (fun i -> Net.add_node net ~asn:(i + 1) ~ip:(Asn.router_ip (i + 1) 0)) in
  ignore (Net.connect net n.(0) n.(1));
  ignore (Net.connect net n.(0) n.(2));
  ignore (Net.connect net n.(0) n.(3));
  ignore (Net.connect net n.(1) n.(3));
  ignore (Net.connect net n.(2) n.(3));
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n.(3) ] in
  check_bool "direct path" true (Engine.best_full_path net st n.(0) = Some [| 1; 4 |])

let tie_break_lowest_ip () =
  (* Diamond: 1 reaches 4 via 2 or 3, equal length; AS 2 has the lower
     quasi-router address, so its route wins at AS 1. *)
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let n4 = Net.add_node net ~asn:4 ~ip:(Asn.router_ip 4 0) in
  ignore (Net.connect net n1 n2);
  ignore (Net.connect net n1 n3);
  ignore (Net.connect net n2 n4);
  ignore (Net.connect net n3 n4);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n4 ] in
  check_bool "via lower address" true
    (Engine.best_full_path net st n1 = Some [| 1; 2; 4 |])

let export_filter_blocks () =
  let net, n1, n2, n3 = line () in
  (* 2 refuses to announce p6 to 1. *)
  let s21 = Option.get (Net.find_session net n2 n1) in
  Net.deny_export net n2 s21 p6;
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "blocked" true (Engine.best st n1 = None);
  check_bool "unaffected elsewhere" true (Engine.best st n2 <> None);
  (* Another prefix is unaffected. *)
  let st9 = Engine.simulate net ~prefix:(Asn.origin_prefix 9) ~originators:[ n3 ] in
  check_bool "other prefix flows" true (Engine.best st9 n1 <> None)

let med_ranking () =
  (* 1 hears 4's prefix via 2 and 3 at equal length; an import MED rule
     at 1 prefers the session from 3 despite 2's lower address. *)
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let n4 = Net.add_node net ~asn:4 ~ip:(Asn.router_ip 4 0) in
  let s12, _ = Net.connect net n1 n2 in
  let s13, _ = Net.connect net n1 n3 in
  ignore (Net.connect net n2 n4);
  ignore (Net.connect net n3 n4);
  ignore s12;
  Net.set_import_med net n1 s13 p6 0;
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n4 ] in
  check_bool "med overrides tie-break" true
    (Engine.best_full_path net st n1 = Some [| 1; 3; 4 |])

let med_rfc_scope () =
  (* Same diamond and MED rule as [med_ranking], but with RFC 4271
     scoping: the routes at 1 come from different neighbour ASes (2 and
     3), so MED must not decide between them and the address tie-break
     picks AS 2 despite 3's lower MED. *)
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let n4 = Net.add_node net ~asn:4 ~ip:(Asn.router_ip 4 0) in
  ignore (Net.connect net n1 n2);
  let s13, _ = Net.connect net n1 n3 in
  ignore (Net.connect net n2 n4);
  ignore (Net.connect net n3 n4);
  Net.set_decision_steps net Simulator.Decision.full_steps;
  Net.set_med_scope net Simulator.Decision.Same_neighbor;
  Net.set_import_med net n1 s13 p6 0;
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n4 ] in
  check_bool "cross-neighbour med ignored" true
    (Engine.best_full_path net st n1 = Some [| 1; 2; 4 |])

let loop_rejection () =
  (* Triangle: routes never loop back through the own AS. *)
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect net n1 n2);
  ignore (Net.connect net n2 n3);
  ignore (Net.connect net n3 n1);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  List.iter
    (fun n ->
      match Engine.best st n with
      | Some r ->
          let full = R.full_path ~own_as:(Net.asn_of net n) r in
          let seen = Hashtbl.create 4 in
          Array.iter
            (fun a ->
              check_bool "no repeated AS" false (Hashtbl.mem seen a);
              Hashtbl.add seen a ())
            full
      | None -> Alcotest.fail "no route")
    [ n1; n2; n3 ]

let ibgp_and_hot_potato () =
  (* AS 1 has two routers r1a, r1b; r1a peers with AS 2, r1b with AS 3;
     both hear AS 4's prefix at equal preference.  With full steps each
     prefers its own eBGP route (hot potato). *)
  let net = Net.create () in
  Net.set_decision_steps net Simulator.Decision.full_steps;
  let r1a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let r1b = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 1) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let n4 = Net.add_node net ~asn:4 ~ip:(Asn.router_ip 4 0) in
  ignore (Net.connect ~kind:Net.Ibgp net r1a r1b);
  ignore (Net.connect net r1a n2);
  ignore (Net.connect net r1b n3);
  ignore (Net.connect net n2 n4);
  ignore (Net.connect net n3 n4);
  Net.set_igp_cost net (fun _ _ -> 5);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n4 ] in
  check_bool "r1a exits via 2" true
    (Engine.best_full_path net st r1a = Some [| 1; 2; 4 |]);
  check_bool "r1b exits via 3" true
    (Engine.best_full_path net st r1b = Some [| 1; 3; 4 |]);
  let paths = Engine.selected_paths net st 1 in
  check_int "AS 1 propagates two routes" 2 (List.length paths)

let ibgp_no_reexport () =
  (* Three routers in a line of iBGP sessions: r_c must NOT hear the
     eBGP route via r_a -> r_b -> r_c (no iBGP re-export), only via its
     direct session with r_a. *)
  let net = Net.create () in
  Net.set_decision_steps net Simulator.Decision.full_steps;
  let ra = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let rb = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 1) in
  let rc = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 2) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  ignore (Net.connect ~kind:Net.Ibgp net ra rb);
  ignore (Net.connect ~kind:Net.Ibgp net rb rc);
  (* deliberately NO ra-rc session *)
  ignore (Net.connect net ra n2);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n2 ] in
  check_bool "ra has it" true (Engine.best st ra <> None);
  check_bool "rb has it via ibgp" true (Engine.best st rb <> None);
  check_bool "rc starves (no full mesh)" true (Engine.best st rc = None)

let relationship_export_rule () =
  (* Valley-free: AS 1 and AS 3 are providers of AS 2.  A route learned
     by 2 from provider 1 must not be exported to provider 3. *)
  let module RC = Simulator.Relclass in
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect ~class_ab:RC.customer ~class_ba:RC.provider net n1 n2);
  ignore (Net.connect ~class_ab:RC.provider ~class_ba:RC.customer net n2 n3);
  Net.set_export_matrix net RC.export_ok;
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n1 ] in
  check_bool "customer 2 hears it" true (Engine.best st n2 <> None);
  check_bool "provider 3 does not (no valley)" true (Engine.best st n3 = None)

let withdrawal_cascades () =
  (* After simulating with a filter, removing it and re-running reaches
     the previously-starved node; the engine state is per-run, so we
     just check both runs are consistent. *)
  let net, n1, n2, n3 = line () in
  let s21 = Option.get (Net.find_session net n2 n1) in
  Net.deny_export net n2 s21 p6;
  let st1 = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "starved" true (Engine.best st1 n1 = None);
  Net.allow_export net n2 s21 p6;
  let st2 = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "reaches after removal" true
    (Engine.best_full_path net st2 n1 = Some [| 1; 2; 3 |])

let carried_lpref () =
  (* Sibling-style session: the receiver keeps the announcer's
     LOCAL_PREF instead of applying an import value. *)
  let net = Net.create () in
  let n1 = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let n2 = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let n3 = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let s12, _ = Net.connect net n1 n2 in
  let _ = Net.connect net n2 n3 in
  let s23 = Option.get (Net.find_session net n2 n3) in
  Net.set_import_lpref net n2 s23 77;
  Net.set_carry_lpref net n1 s12 true;
  let st = Engine.simulate net ~prefix:p6 ~originators:[ n3 ] in
  match Engine.rib_in st n1 with
  | [ (_, r) ] -> check_int "carried lpref" 77 r.R.lpref
  | _ -> Alcotest.fail "expected exactly one rib-in route"

let event_budget () =
  let net, _, _, n3 = line () in
  let st = Engine.simulate ~max_events:1 net ~prefix:p6 ~originators:[ n3 ] in
  check_bool "flagged non-converged" false (Engine.converged st)

let suite =
  [
    Alcotest.test_case "propagation" `Quick propagation;
    Alcotest.test_case "shortest path choice" `Quick shortest_path_choice;
    Alcotest.test_case "tie-break lowest ip" `Quick tie_break_lowest_ip;
    Alcotest.test_case "export filter blocks" `Quick export_filter_blocks;
    Alcotest.test_case "med ranking" `Quick med_ranking;
    Alcotest.test_case "med rfc scope" `Quick med_rfc_scope;
    Alcotest.test_case "loop rejection" `Quick loop_rejection;
    Alcotest.test_case "ibgp + hot potato" `Quick ibgp_and_hot_potato;
    Alcotest.test_case "ibgp no re-export" `Quick ibgp_no_reexport;
    Alcotest.test_case "relationship export rule" `Quick relationship_export_rule;
    Alcotest.test_case "withdrawal cascades" `Quick withdrawal_cascades;
    Alcotest.test_case "carried lpref" `Quick carried_lpref;
    Alcotest.test_case "event budget" `Quick event_budget;
  ]
