(* Tests for the churn layer: event codec and normalization, the
   deterministic scenario generators, and the replay driver — warm
   equivalence, exact restore, hijack accounting, fault containment,
   and fuzzed streams that must never crash. *)

open Bgp
module Net = Simulator.Net
module Qrmodel = Asmodel.Qrmodel
module Event = Stream.Event
module Streamgen = Stream.Streamgen
module Replay = Stream.Replay

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let model () = Qrmodel.initial graph

let known_as = Topology.Asgraph.mem_node graph

let sub_of ?(bits = 1) p =
  Prefix.make (Prefix.network p) (min 32 (Prefix.length p + bits))

(* -- event codec ------------------------------------------------------ *)

let event_roundtrip () =
  let p = Asn.origin_prefix 3 in
  let all =
    [
      Event.make ~ts_ms:0 (Event.Announce { prefix = p; origin = 5 });
      Event.make ~ts_ms:10 (Event.Withdraw { prefix = p; origin = 5 });
      Event.make ~ts_ms:20 (Event.Session_down { a = 3; b = 4 });
      Event.make ~ts_ms:30 (Event.Session_up { a = 3; b = 4 });
      Event.make ~ts_ms:40 (Event.Link_fail { a = 1; b = 2 });
      Event.make ~ts_ms:50 (Event.Link_restore { a = 1; b = 2 });
      Event.make ~ts_ms:60 (Event.Hijack { prefix = sub_of p; attacker = 5 });
      Event.make ~ts_ms:70
        (Event.Hijack_end { prefix = sub_of p; attacker = 5 });
    ]
  in
  List.iter
    (fun ev ->
      match Event.of_string (Event.to_string ev) with
      | Error e -> Alcotest.failf "reparse of %S: %s" (Event.to_string ev) e
      | Ok ev' ->
          check_bool (Event.to_string ev) true (Event.equal ev ev'))
    all

let event_rejects_garbage () =
  List.iter
    (fun s ->
      check_bool s true (Result.is_error (Event.of_string s)))
    [
      "";
      "announce";
      "10 announce";
      "10 announce 1.2.3.0/24";
      "10 announce notaprefix 5";
      "x announce 1.2.3.0/24 5";
      "10 frobnicate 3 4";
      "10 session-down 3 4 5 6";
      "10 session-down 3 x";
    ]

let normalize_is_deterministic () =
  let p = Asn.origin_prefix 2 in
  let good ts action = Event.make ~ts_ms:ts action in
  let stream =
    [
      (* out of order *)
      good 30 (Event.Session_up { a = 3; b = 4 });
      good 10 (Event.Session_down { a = 3; b = 4 });
      (* duplicate timestamp: input order must be kept *)
      good 20 (Event.Withdraw { prefix = p; origin = 2 });
      good 20 (Event.Announce { prefix = p; origin = 2 });
      (* rejects: negative ts, unknown AS, self link *)
      good (-1) (Event.Announce { prefix = p; origin = 2 });
      good 40 (Event.Session_down { a = 3; b = 99 });
      good 50 (Event.Link_fail { a = 4; b = 4 });
    ]
  in
  let accepted, rejected = Event.normalize ~known_as stream in
  check_int "three rejects" 3 (List.length rejected);
  check_bool "sorted by timestamp" true
    (List.map (fun e -> e.Event.ts_ms) accepted = [ 10; 20; 20; 30 ]);
  (* Equal timestamps keep input order: withdraw stays before announce. *)
  (match List.filter (fun e -> e.Event.ts_ms = 20) accepted with
  | [ { Event.action = Event.Withdraw _; _ };
      { Event.action = Event.Announce _; _ } ] ->
      ()
  | _ -> Alcotest.fail "duplicate-timestamp order not preserved");
  (* Same input, same output — bit-identical on a second pass. *)
  let accepted', rejected' = Event.normalize ~known_as stream in
  check_bool "idempotent accept list" true
    (List.for_all2 Event.equal accepted accepted');
  check_int "idempotent reject list" (List.length rejected)
    (List.length rejected')

(* -- streamgen -------------------------------------------------------- *)

let streamgen_deterministic () =
  let m = model () in
  List.iter
    (fun name ->
      let gen =
        match Streamgen.of_name name with
        | Some g -> g
        | None -> Alcotest.failf "scenario %s missing" name
      in
      let run () = gen ~events:24 m (Random.State.make [| 7 |]) in
      let s1 = run () and s2 = run () in
      check_bool (name ^ " same seed, same stream") true
        (List.length s1 = List.length s2 && List.for_all2 Event.equal s1 s2);
      (* Generated streams are already well-formed for their model. *)
      let accepted, rejected = Event.normalize ~known_as s1 in
      check_int (name ^ " nothing rejected") 0 (List.length rejected);
      check_int (name ^ " nothing dropped") (List.length s1)
        (List.length accepted))
    Streamgen.scenario_names

(* -- replay ----------------------------------------------------------- *)

let baseline_fingerprint () =
  let _, report = Replay.run (model ()) [] in
  report.Replay.fingerprint

let replay_deterministic () =
  let run () =
    let m = model () in
    let stream = Streamgen.mixed ~events:32 m (Random.State.make [| 11 |]) in
    let _, report = Replay.run m stream in
    report
  in
  let r1 = run () and r2 = run () in
  check_int "same events" r1.Replay.events r2.Replay.events;
  check_int "same reconvergences" r1.Replay.reconvergences
    r2.Replay.reconvergences;
  check_bool "same fingerprint" true
    (r1.Replay.fingerprint = r2.Replay.fingerprint);
  check_bool "same per-class counts" true
    (List.map
       (fun (c, cs) -> (c, { cs with Replay.cs_wall_s = 0.0 }))
       r1.Replay.classes
    = List.map
        (fun (c, cs) -> (c, { cs with Replay.cs_wall_s = 0.0 }))
        r2.Replay.classes)

let withdraw_reannounce_restores () =
  let m = model () in
  let p = Asn.origin_prefix 3 in
  let stream =
    [
      Event.make ~ts_ms:0 (Event.Withdraw { prefix = p; origin = 3 });
      Event.make ~ts_ms:10 (Event.Announce { prefix = p; origin = 3 });
    ]
  in
  let t, report = Replay.run m stream in
  check_int "no quarantine" 0 (List.length report.Replay.quarantine);
  check_bool "origins restored" true (Replay.origins t p = [ 3 ]);
  check_bool "baseline routing restored" true
    (report.Replay.fingerprint = baseline_fingerprint ())

let session_roundtrip_restores () =
  let m = model () in
  let denies0, _ = Net.count_policies m.Qrmodel.net in
  let stream =
    [
      Event.make ~ts_ms:0 (Event.Session_down { a = 4; b = 5 });
      Event.make ~ts_ms:10 (Event.Session_up { a = 4; b = 5 });
      Event.make ~ts_ms:20 (Event.Link_fail { a = 1; b = 2 });
      Event.make ~ts_ms:30 (Event.Link_restore { a = 1; b = 2 });
    ]
  in
  let _, report = Replay.run m stream in
  let denies1, _ = Net.count_policies m.Qrmodel.net in
  check_int "denies restored exactly" denies0 denies1;
  check_bool "baseline routing restored" true
    (report.Replay.fingerprint = baseline_fingerprint ());
  (* Something actually happened in between. *)
  check_bool "events reconverged prefixes" true
    (report.Replay.reconvergences > 0)

let overlapping_downs_compose () =
  (* A session-down inside a link-fail on the same AS pair: each layer
     restores only the denies it added, so the interleaved bring-ups
     still end at the exact baseline. *)
  let m = model () in
  let denies0, _ = Net.count_policies m.Qrmodel.net in
  let stream =
    [
      Event.make ~ts_ms:0 (Event.Session_down { a = 4; b = 5 });
      Event.make ~ts_ms:10 (Event.Link_fail { a = 4; b = 5 });
      Event.make ~ts_ms:20 (Event.Session_up { a = 4; b = 5 });
      Event.make ~ts_ms:30 (Event.Link_restore { a = 4; b = 5 });
    ]
  in
  let _, report = Replay.run m stream in
  let denies1, _ = Net.count_policies m.Qrmodel.net in
  check_int "denies restored exactly" denies0 denies1;
  check_bool "baseline routing restored" true
    (report.Replay.fingerprint = baseline_fingerprint ())

let subprefix_hijack_pollutes () =
  let m = model () in
  let victim = Asn.origin_prefix 3 in
  let hijacked = sub_of victim in
  let stream =
    [
      Event.make ~ts_ms:0 (Event.Hijack { prefix = hijacked; attacker = 5 });
      Event.make ~ts_ms:100
        (Event.Hijack_end { prefix = hijacked; attacker = 5 });
    ]
  in
  let reports = ref [] in
  let t, report =
    Replay.run ~on_event:(fun r -> reports := r :: !reports) m stream
  in
  (match List.rev !reports with
  | [ hij; fin ] ->
      check_bool "classified sub-prefix" true (hij.Replay.cls = Replay.Chijack_sub);
      check_bool "catchment polluted" true (hij.Replay.polluted > 0);
      check_bool "pollution drains after hijack-end" true
        (fin.Replay.polluted = 0)
  | _ -> Alcotest.fail "expected two event reports");
  check_bool "attacker origination withdrawn" true
    (Replay.origins t hijacked = []);
  check_bool "hijacked prefix still tracked" true
    (List.mem hijacked (Replay.tracked t));
  check_int "no quarantine" 0 (List.length report.Replay.quarantine)

let moas_hijack_classifies () =
  let m = model () in
  let victim = Asn.origin_prefix 3 in
  let stream =
    [ Event.make ~ts_ms:0 (Event.Hijack { prefix = victim; attacker = 5 }) ]
  in
  let t, report = Replay.run m stream in
  check_bool "classified MOAS" true
    (List.mem_assoc Replay.Chijack_moas report.Replay.classes);
  check_bool "both origins live" true (Replay.origins t victim = [ 3; 5 ])

let warm_matches_cold () =
  (* Warm per-event reconvergence must be behaviourally invisible:
     the same stream over the same randomized world, replayed warm and
     cold, ends at the same routing fingerprint. *)
  let gen =
    QCheck.Gen.(
      let* n = int_range 3 10 in
      let* extra = int_range 0 n in
      let* tree = list_repeat (n - 1) (int_bound 1_000_000) in
      let* pairs = list_repeat extra (pair (int_bound 1_000_000) (int_bound 1_000_000)) in
      let* seed = int_bound 1_000_000 in
      let edges =
        List.mapi (fun i r -> (2 + i, 1 + (r mod (i + 1)))) tree
        @ List.map (fun (a, b) -> (1 + (a mod n), 1 + (b mod n))) pairs
      in
      return (Topology.Asgraph.of_edges edges, seed))
  in
  let arb =
    QCheck.make
      ~print:(fun (g, seed) ->
        Printf.sprintf "seed=%d edges=%s" seed
          (String.concat ","
             (List.map
                (fun (a, b) -> Printf.sprintf "%d-%d" a b)
                (Topology.Asgraph.edges g))))
      gen
  in
  let prop (g, seed) =
    let run mode =
      let m = Qrmodel.initial g in
      let stream = Streamgen.mixed ~events:24 m (Random.State.make [| seed |]) in
      let _, report = Replay.run ~mode m stream in
      report
    in
    let warm = run Simulator.Warm.On in
    let cold = run Simulator.Warm.Off in
    warm.Replay.fingerprint = cold.Replay.fingerprint
    && warm.Replay.quarantine = [] && cold.Replay.quarantine = []
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"warm replay = cold replay" ~count:20 arb prop)

let verify_mode_agrees () =
  let m = model () in
  let stream = Streamgen.mixed ~events:32 m (Random.State.make [| 5 |]) in
  let _, report = Replay.run ~mode:Simulator.Warm.Verify m stream in
  check_int "no warm/cold divergence" 0 report.Replay.divergences;
  check_int "no quarantine" 0 (List.length report.Replay.quarantine)

let transient_faults_recover () =
  let ambient = Simulator.Faultinject.current () in
  Simulator.Faultinject.set
    (Some
       { Simulator.Faultinject.rate = 0.08; seed = 42;
         scope = Simulator.Faultinject.Transient });
  Fun.protect
    ~finally:(fun () -> Simulator.Faultinject.set ambient)
    (fun () ->
      let m = model () in
      let stream = Streamgen.flap_storm m (Random.State.make [| 9 |]) in
      let _, report = Replay.run m stream in
      check_int "no unrecovered failures" 0 report.Replay.failed;
      check_int "no quarantine leaks" 0 (List.length report.Replay.quarantine);
      check_bool "replay completed" true
        (report.Replay.events = List.length stream);
      (* The injected failures must actually have fired. *)
      check_bool "retries happened" true (report.Replay.retried > 0);
      check_bool "routing matches the clean replay" true
        (report.Replay.fingerprint
        =
        let m = model () in
        let stream = Streamgen.flap_storm m (Random.State.make [| 9 |]) in
        Simulator.Faultinject.set None;
        let _, clean = Replay.run m stream in
        clean.Replay.fingerprint))

let full_faults_quarantine_not_fatal () =
  (* Permanent failures and shrunk budgets: the replay must complete,
     reporting the damage as quarantine instead of raising. *)
  let ambient = Simulator.Faultinject.current () in
  Simulator.Faultinject.set
    (Some
       { Simulator.Faultinject.rate = 0.10; seed = 7;
         scope = Simulator.Faultinject.Full });
  Fun.protect
    ~finally:(fun () -> Simulator.Faultinject.set ambient)
    (fun () ->
      let m = model () in
      let stream = Streamgen.mixed ~events:24 m (Random.State.make [| 3 |]) in
      let _, report = Replay.run m stream in
      check_bool "replay completed" true
        (report.Replay.events = List.length stream))

(* -- fuzz ------------------------------------------------------------- *)

let fuzz_streams_never_crash () =
  (* Random (often nonsensical) streams: unknown ASes, self links,
     negative timestamps, duplicate events, out-of-order input.
     Normalize must reject deterministically and replay must absorb
     whatever survives without raising. *)
  let gen_event =
    QCheck.Gen.(
      let* ts = int_range (-50) 200 in
      let* a = int_range 0 9 in
      let* b = int_range 0 9 in
      let* kind = int_bound 7 in
      let p = Asn.origin_prefix (max 1 a) in
      let action =
        match kind with
        | 0 -> Event.Announce { prefix = p; origin = b }
        | 1 -> Event.Withdraw { prefix = p; origin = b }
        | 2 -> Event.Session_down { a; b }
        | 3 -> Event.Session_up { a; b }
        | 4 -> Event.Link_fail { a; b }
        | 5 -> Event.Link_restore { a; b }
        | 6 -> Event.Hijack { prefix = sub_of p; attacker = b }
        | _ -> Event.Hijack_end { prefix = sub_of p; attacker = b }
      in
      return (Event.make ~ts_ms:ts action))
  in
  let arb =
    QCheck.make
      ~print:(fun evs -> String.concat "; " (List.map Event.to_string evs))
      QCheck.Gen.(list_size (int_range 0 30) gen_event)
  in
  let prop stream =
    let m = model () in
    let accepted, rejected = Event.normalize ~known_as stream in
    let _, report = Replay.run m stream in
    (* Replay normalizes internally: its tallies must agree. *)
    report.Replay.events = List.length accepted
    && report.Replay.rejected = List.length rejected
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"fuzzed streams never crash" ~count:60 arb prop)

let malformed_text_never_crashes () =
  let arb = QCheck.make ~print:String.escaped QCheck.Gen.(string_size (int_range 0 40)) in
  let prop s =
    match Event.of_string s with
    | Ok ev -> Event.equal ev (Result.get_ok (Event.of_string (Event.to_string ev)))
    | Error _ -> true
  in
  QCheck.Test.check_exn
    (QCheck.Test.make ~name:"of_string total" ~count:200 arb prop)

(* Driver state survives across drivers via persist/resume: the up half
   of a pair applied by a successor driver still finds the down placed
   by its predecessor (before the fix it was a silent no-op and the
   down's denies leaked forever). *)
let persist_resumes_across_drivers () =
  let m = model () in
  let net = m.Qrmodel.net in
  let denies0, _ = Net.count_policies net in
  let rp = Replay.create m in
  let fp0 = Replay.fingerprint rp in
  ignore
    (Replay.apply rp (Event.make ~ts_ms:0 (Event.Session_down { a = 4; b = 5 })));
  let fp_down = Replay.fingerprint rp in
  check_bool "down changed routing" true (fp_down <> fp0);
  let rp2 =
    Replay.create ~states:(Replay.states rp) ~resume:(Replay.persist rp) m
  in
  check_bool "carried state is bit-identical" true
    (Replay.fingerprint rp2 = fp_down);
  ignore
    (Replay.apply rp2 (Event.make ~ts_ms:10 (Event.Session_up { a = 4; b = 5 })));
  check_bool "up matched the earlier driver's down" true
    (Replay.fingerprint rp2 = fp0);
  let denies1, _ = Net.count_policies net in
  check_int "denies fully lifted" denies0 denies1

(* The failure path of a churn apply: rollback_net reverse-applies
   exactly the denies one driver placed, restoring the shared net. *)
let rollback_restores_net () =
  let m = model () in
  let net = m.Qrmodel.net in
  let denies0, _ = Net.count_policies net in
  let rp = Replay.create m in
  let fp0 = Replay.fingerprint rp in
  ignore
    (Replay.apply rp (Event.make ~ts_ms:0 (Event.Link_fail { a = 4; b = 5 })));
  ignore
    (Replay.apply rp (Event.make ~ts_ms:10 (Event.Session_down { a = 1; b = 2 })));
  check_bool "denies placed" true (fst (Net.count_policies net) > denies0);
  Replay.rollback_net rp;
  check_int "denies rolled back" denies0 (fst (Net.count_policies net));
  let rp2 = Replay.create m in
  check_bool "pre-churn routing restored" true (Replay.fingerprint rp2 = fp0)

let suite =
  [
    Alcotest.test_case "event roundtrip" `Quick event_roundtrip;
    Alcotest.test_case "event rejects garbage" `Quick event_rejects_garbage;
    Alcotest.test_case "normalize is deterministic" `Quick
      normalize_is_deterministic;
    Alcotest.test_case "streamgen deterministic" `Quick streamgen_deterministic;
    Alcotest.test_case "replay deterministic" `Quick replay_deterministic;
    Alcotest.test_case "withdraw/re-announce restores" `Quick
      withdraw_reannounce_restores;
    Alcotest.test_case "session/link roundtrip restores" `Quick
      session_roundtrip_restores;
    Alcotest.test_case "overlapping downs compose" `Quick
      overlapping_downs_compose;
    Alcotest.test_case "sub-prefix hijack pollutes" `Quick
      subprefix_hijack_pollutes;
    Alcotest.test_case "MOAS hijack classifies" `Quick moas_hijack_classifies;
    Alcotest.test_case "warm matches cold" `Quick warm_matches_cold;
    Alcotest.test_case "verify mode agrees" `Quick verify_mode_agrees;
    Alcotest.test_case "transient faults recover" `Quick
      transient_faults_recover;
    Alcotest.test_case "full faults quarantine not fatal" `Quick
      full_faults_quarantine_not_fatal;
    Alcotest.test_case "fuzzed streams never crash" `Quick
      fuzz_streams_never_crash;
    Alcotest.test_case "malformed text never crashes" `Quick
      malformed_text_never_crashes;
    Alcotest.test_case "persist resumes across drivers" `Quick
      persist_resumes_across_drivers;
    Alcotest.test_case "rollback restores net" `Quick rollback_restores_net;
  ]
