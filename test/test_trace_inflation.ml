(* Tests for propagation trees (Simulator.Trace) and path inflation
   (Topology.Inflation). *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Trace = Simulator.Trace

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let p6 = Asn.origin_prefix 6

(* Line 1-2-3-4 originated at node of AS 4. *)
let line_state () =
  let net = Net.create () in
  let nodes =
    Array.init 4 (fun i -> Net.add_node net ~asn:(i + 1) ~ip:(Asn.router_ip (i + 1) 0))
  in
  for i = 0 to 2 do
    ignore (Net.connect net nodes.(i) nodes.(i + 1))
  done;
  let st = Engine.simulate net ~prefix:p6 ~originators:[ nodes.(3) ] in
  (net, nodes, st)

let tree_structure () =
  let net, nodes, st = line_state () in
  let t = Trace.tree net st in
  check_bool "root is originator" true (t.Trace.roots = [ nodes.(3) ]);
  check_bool "no unrouted" true (t.Trace.unrouted = []);
  check_bool "parent chain" true
    (t.Trace.parent.(nodes.(0)) = Some nodes.(1)
    && t.Trace.parent.(nodes.(1)) = Some nodes.(2)
    && t.Trace.parent.(nodes.(2)) = Some nodes.(3)
    && t.Trace.parent.(nodes.(3)) = None);
  check_int "depth of end" 3 (Trace.depth t nodes.(0));
  check_int "depth of root" 0 (Trace.depth t nodes.(3));
  check_int "cone of node 2" 3 (Trace.subtree_size t nodes.(2));
  check_bool "depth histogram" true
    (Trace.depth_histogram t = [ (0, 1); (1, 1); (2, 1); (3, 1) ])

let tree_with_unrouted () =
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let c = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  ignore (Net.connect net a b);
  ignore c (* isolated *);
  let st = Engine.simulate net ~prefix:p6 ~originators:[ a ] in
  let t = Trace.tree net st in
  check_bool "c unrouted" true (List.mem c t.Trace.unrouted);
  check_bool "b child of a" true (t.Trace.parent.(b) = Some a)

let pp_route_format () =
  let net, nodes, st = line_state () in
  let s = Format.asprintf "%a" (Trace.pp_route net st) nodes.(0) in
  check_bool "mentions all hops" true
    (List.for_all
       (fun frag ->
         let rec contains i =
           i + String.length frag <= String.length s
           && (String.sub s i (String.length frag) = frag || contains (i + 1))
         in
         contains 0)
       [ "AS1"; "AS2"; "AS3"; "AS4"; "[origin]" ])

(* -- inflation -- *)

let square_graph =
  (* 1-2, 2-4, 1-3, 3-4 and a long detour 1-5, 5-6, 6-4. *)
  Topology.Asgraph.of_edges [ (1, 2); (2, 4); (1, 3); (3, 4); (1, 5); (5, 6); (6, 4) ]

let inflation_basic () =
  let paths =
    [
      Aspath.of_list [ 1; 2; 4 ];  (* shortest: 2 hops *)
      Aspath.of_list [ 1; 5; 6; 4 ];  (* +1 *)
      Aspath.of_list [ 1; 3; 4 ];  (* shortest again *)
    ]
  in
  let r = Topology.Inflation.analyze square_graph paths in
  check_int "graded" 3 r.Topology.Inflation.paths;
  check_int "exact" 2 r.Topology.Inflation.exact;
  check_int "inflated" 1 r.Topology.Inflation.inflated;
  check_bool "histogram" true
    (r.Topology.Inflation.extra_hops_histogram = [ (0, 2); (1, 1) ]);
  check_bool "mean" true
    (abs_float (r.Topology.Inflation.mean_inflation -. (1.0 /. 3.0)) < 1e-9)

let inflation_skips_unknown () =
  let paths = [ Aspath.of_list [ 99; 98 ]; Aspath.of_list [ 1 ] ] in
  let r = Topology.Inflation.analyze square_graph paths in
  check_int "nothing graded" 0 r.Topology.Inflation.paths

let bfs_distances () =
  check_bool "adjacent" true (Topology.Inflation.bfs_distance square_graph 1 2 = Some 1);
  check_bool "across" true (Topology.Inflation.bfs_distance square_graph 1 4 = Some 2);
  check_bool "self" true (Topology.Inflation.bfs_distance square_graph 1 1 = Some 0);
  check_bool "unknown" true (Topology.Inflation.bfs_distance square_graph 1 99 = None)

let observed_paths_inflation_is_sane () =
  (* On a real generated world, inflation must be non-negative and the
     histogram consistent with the totals. *)
  let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 12 } in
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let graph = Topology.Extract.graph_of_dataset data in
  let r = Topology.Inflation.analyze graph (Rib.all_paths data) in
  check_bool "graded some" true (r.Topology.Inflation.paths > 0);
  let sum = List.fold_left (fun acc (_, n) -> acc + n) 0 r.Topology.Inflation.extra_hops_histogram in
  check_int "histogram covers all" r.Topology.Inflation.paths sum;
  check_bool "policy routing inflates some paths" true
    (r.Topology.Inflation.inflated > 0)

let suite =
  [
    Alcotest.test_case "tree structure" `Quick tree_structure;
    Alcotest.test_case "tree with unrouted" `Quick tree_with_unrouted;
    Alcotest.test_case "pp_route" `Quick pp_route_format;
    Alcotest.test_case "inflation basic" `Quick inflation_basic;
    Alcotest.test_case "inflation skips unknown" `Quick inflation_skips_unknown;
    Alcotest.test_case "bfs distances" `Quick bfs_distances;
    Alcotest.test_case "observed inflation sane" `Slow
      observed_paths_inflation_is_sane;
  ]
