(* Tests for splits, agreement grading, prediction metrics, quantiles. *)

open Bgp

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let op asn i = { Rib.op_ip = Asn.router_ip asn i; op_as = asn }

let entry o i origin path_list =
  {
    Rib.op = op o i;
    prefix = Asn.origin_prefix origin;
    path = Aspath.of_list path_list;
  }

let data =
  Rib.of_entries
    [
      entry 1 0 4 [ 1; 4 ];
      entry 1 1 4 [ 1; 5; 4 ];
      entry 2 0 4 [ 2; 4 ];
      entry 3 0 4 [ 3; 4 ];
      entry 3 0 5 [ 3; 4; 5 ];
    ]

let split_partition () =
  let s = Evaluation.Split.by_observation_points ~seed:1 data in
  let train_pts = Rib.observation_points s.Evaluation.Split.training in
  let valid_pts = Rib.observation_points s.Evaluation.Split.validation in
  check_bool "both sides inhabited" true (train_pts <> [] && valid_pts <> []);
  check_bool "disjoint" true
    (List.for_all
       (fun p -> not (List.exists (Rib.obs_point_equal p) valid_pts))
       train_pts);
  check_int "nothing lost"
    (Rib.size data)
    (Rib.size s.Evaluation.Split.training + Rib.size s.Evaluation.Split.validation)

let split_deterministic () =
  let s1 = Evaluation.Split.by_observation_points ~seed:5 data in
  let s2 = Evaluation.Split.by_observation_points ~seed:5 data in
  check_bool "same split for same seed" true
    (Rib.entries s1.Evaluation.Split.training
    = Rib.entries s2.Evaluation.Split.training)

let split_by_origin () =
  let s = Evaluation.Split.by_origin_ases ~seed:2 data in
  let torigins = Rib.origins s.Evaluation.Split.training in
  let vorigins = Rib.origins s.Evaluation.Split.validation in
  check_bool "origin sets disjoint" true
    (Asn.Set.is_empty (Asn.Set.inter torigins vorigins))

let combined_split () =
  let s = Evaluation.Split.combined ~seed:3 data in
  (* Training origins and validation origins are disjoint, and so are
     the observation points. *)
  let to_ = Rib.origins s.Evaluation.Split.training in
  let vo = Rib.origins s.Evaluation.Split.validation in
  check_bool "origins disjoint" true (Asn.Set.is_empty (Asn.Set.inter to_ vo));
  let tp = Rib.observation_points s.Evaluation.Split.training in
  let vp = Rib.observation_points s.Evaluation.Split.validation in
  check_bool "points disjoint" true
    (List.for_all
       (fun p -> not (List.exists (Rib.obs_point_equal p) vp))
       tp)

let graph = Topology.Asgraph.of_edges [ (1, 4); (1, 5); (2, 4); (3, 4); (4, 5) ]

let agreement_grading () =
  let m = Asmodel.Baseline.shortest_path graph in
  let b = Evaluation.Agreement.simulate_and_grade m data in
  check_int "all cases graded" 5 b.Evaluation.Agreement.cases;
  (* 1-4, 2-4, 3-4 agree trivially (shortest); 1-5-4 loses on length;
     3-4-5 disagrees with the direct 4-5 announcement seen via 4... it
     is the shortest available at 3, so it also agrees. *)
  check_bool "most agree" true (b.Evaluation.Agreement.agree >= 3);
  let pct = Evaluation.Agreement.agree_fraction b in
  check_bool "fraction consistent" true
    (abs_float
       (pct
       -. (float_of_int b.Evaluation.Agreement.agree /. 5.0))
    < 1e-9)

let prediction_report () =
  let m = Asmodel.Qrmodel.initial graph in
  let states = Hashtbl.create 8 in
  let r = Evaluation.Predict.evaluate m ~states data in
  check_int "cases" 5 r.Evaluation.Predict.totals.Evaluation.Predict.cases;
  let sum =
    r.Evaluation.Predict.totals.Evaluation.Predict.rib_out
    + r.Evaluation.Predict.totals.Evaluation.Predict.potential_rib_out
    + r.Evaluation.Predict.totals.Evaluation.Predict.rib_in
    + r.Evaluation.Predict.totals.Evaluation.Predict.no_rib_in
    + r.Evaluation.Predict.totals.Evaluation.Predict.unresolved
  in
  check_int "verdicts partition cases" 5 sum;
  check_int "nothing unresolved here" 0
    r.Evaluation.Predict.totals.Evaluation.Predict.unresolved;
  check_bool "fractions ordered" true
    (Evaluation.Predict.exact_fraction r
     <= Evaluation.Predict.down_to_tie_break_fraction r
    && Evaluation.Predict.down_to_tie_break_fraction r
       <= Evaluation.Predict.rib_in_fraction r);
  check_bool "coverage counts consistent" true
    (let c = r.Evaluation.Predict.coverage in
     c.Evaluation.Predict.full <= c.Evaluation.Predict.at_least_90
     && c.Evaluation.Predict.at_least_90 <= c.Evaluation.Predict.at_least_half
     && c.Evaluation.Predict.at_least_half <= c.Evaluation.Predict.prefixes)

let quantile_helpers () =
  let sample = [| 5; 1; 3; 2; 4 |] in
  check_int "median" 3 (Evaluation.Quantiles.percentile sample 50.0);
  check_int "max at 100" 5 (Evaluation.Quantiles.percentile sample 100.0);
  check_int "min at tiny p" 1 (Evaluation.Quantiles.percentile sample 1.0);
  check_int "empty" 0 (Evaluation.Quantiles.percentile [||] 50.0);
  check_bool "histogram" true
    (Evaluation.Quantiles.histogram [ 1; 1; 2 ] = [ (1, 2); (2, 1) ]);
  check_bool "mean" true (abs_float (Evaluation.Quantiles.mean [ 1; 2; 3 ] -. 2.0) < 1e-9);
  let c = Evaluation.Quantiles.ccdf [ 1; 1; 2; 4 ] in
  check_bool "ccdf starts at 1" true
    (match c with (1, f) :: _ -> abs_float (f -. 1.0) < 1e-9 | _ -> false);
  check_bool "log bins" true
    (Evaluation.Quantiles.log_binned [ (1, 5); (2, 3); (3, 2); (9, 1) ]
    = [ (1, 1, 5); (2, 3, 5); (8, 15, 1) ])

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentiles monotone in p" ~count:200
    QCheck.(list_of_size (QCheck.Gen.int_range 1 30) (int_bound 100))
    (fun values ->
      let sample = Array.of_list values in
      let q25 = Evaluation.Quantiles.percentile (Array.copy sample) 25.0 in
      let q50 = Evaluation.Quantiles.percentile (Array.copy sample) 50.0 in
      let q99 = Evaluation.Quantiles.percentile (Array.copy sample) 99.0 in
      q25 <= q50 && q50 <= q99)

let suite =
  [
    Alcotest.test_case "split partitions points" `Quick split_partition;
    Alcotest.test_case "split deterministic" `Quick split_deterministic;
    Alcotest.test_case "split by origin" `Quick split_by_origin;
    Alcotest.test_case "combined split" `Quick combined_split;
    Alcotest.test_case "agreement grading" `Quick agreement_grading;
    Alcotest.test_case "prediction report" `Quick prediction_report;
    Alcotest.test_case "quantile helpers" `Quick quantile_helpers;
    QCheck_alcotest.to_alcotest prop_percentile_monotone;
  ]
