(* Tests for the Analysis.Topometrics fidelity battery: metric values
   on tiny hand-built graphs against hand computation, self-compare
   scoring exactly 1.0, and cross-family discrimination. *)

module G = Topology.Asgraph
module T = Analysis.Topometrics

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_float = Alcotest.(check (float 1e-9))

let triangle = G.of_edges [ (1, 2); (2, 3); (1, 3) ]

let path5 = G.of_edges [ (1, 2); (2, 3); (3, 4); (4, 5) ]

let star5 = G.of_edges [ (1, 2); (1, 3); (1, 4); (1, 5) ]

let k4 = G.of_edges [ (1, 2); (1, 3); (1, 4); (2, 3); (2, 4); (3, 4) ]

let triangle_metrics () =
  let s = T.summarize triangle in
  check_int "nodes" 3 s.T.nodes;
  check_int "edges" 3 s.T.edges;
  check_float "avg degree" 2.0 s.T.avg_degree;
  (* Every neighbourhood is closed. *)
  check_float "clustering" 1.0 s.T.clustering;
  (* All three nodes are the "rich club" and form a clique. *)
  check_float "rich club" 1.0 s.T.rich_club;
  check_int "max core" 2 s.T.max_core;
  (* Regular graph: assortativity degenerates; defined as 0. *)
  check_float "assortativity" 0.0 s.T.assortativity;
  (* lambda_1 of K3 is exactly 2. *)
  check_bool "lambda1 = 2" true
    (Array.length s.T.spectrum > 0 && Float.abs (s.T.spectrum.(0) -. 2.0) < 1e-6)

let k4_metrics () =
  let s = T.summarize k4 in
  check_float "clustering" 1.0 s.T.clustering;
  check_int "max core" 3 s.T.max_core;
  (* lambda_1 of K_n is n - 1. *)
  check_bool "lambda1 = 3" true (Float.abs (s.T.spectrum.(0) -. 3.0) < 1e-6);
  (* CCDF: all 4 nodes have degree 3. *)
  check_bool "ccdf" true (s.T.degree_ccdf = [ (3, 1.0) ])

let path_metrics () =
  let s = T.summarize path5 in
  check_float "clustering" 0.0 s.T.clustering;
  check_int "max core" 1 s.T.max_core;
  (* Degree sequence 1,2,2,2,1: CCDF P(d>=1)=1, P(d>=2)=0.6. *)
  check_bool "ccdf" true (s.T.degree_ccdf = [ (1, 1.0); (2, 0.6) ]);
  (* Ends attach to middles: disassortative. *)
  check_bool "disassortative" true (s.T.assortativity < 0.0);
  (* Node 3 carries the most shortest paths; the betweenness deciles
     are max-normalized so the top decile is exactly 1. *)
  check_float "max betweenness decile" 1.0 s.T.betweenness_deciles.(10);
  check_float "min betweenness decile" 0.0 s.T.betweenness_deciles.(0)

let star_metrics () =
  let s = T.summarize star5 in
  (* Hub degree 4, leaves degree 1: strongly disassortative (r = -1). *)
  check_float "assortativity" (-1.0) s.T.assortativity;
  check_float "clustering" 0.0 s.T.clustering;
  check_int "max core" 1 s.T.max_core;
  (* lambda_1 of a star on n nodes is sqrt (n - 1); bipartite, so the
     +/-2 pair makes the leading sign arbitrary — check magnitude. *)
  check_bool "lambda1 magnitude = 2" true
    (Float.abs (Float.abs s.T.spectrum.(0) -. 2.0) < 1e-6)

let empty_graph () =
  let s = T.summarize G.empty in
  check_int "nodes" 0 s.T.nodes;
  let r = T.compare s s in
  check_float "empty self-compare" 1.0 r.T.score

let self_compare_exact () =
  (* The battery's defining property: any world against itself scores
     exactly 1.0 on every metric — no tolerance. *)
  List.iter
    (fun (label, g) ->
      let s = T.summarize g in
      let r = T.compare s s in
      List.iter
        (fun m ->
          check_bool
            (Printf.sprintf "%s %s = 1.0" label m.T.name)
            true (m.T.similarity = 1.0))
        r.T.metrics;
      check_bool (label ^ " score = 1.0") true (r.T.score = 1.0))
    [
      ("triangle", triangle);
      ("path5", path5);
      ("star5", star5);
      ("k4", k4);
      ( "paper world",
        Netgen.Gentopo.as_graph
          (Netgen.generate Netgen.Family.Paper Netgen.Conf.tiny
             (Random.State.make [| 3 |])) );
    ]

let known_different_score_lower () =
  let sum fam =
    T.summarize
      (Netgen.Gentopo.as_graph
         (Netgen.generate fam Netgen.Conf.tiny (Random.State.make [| 3 |])))
  in
  let paper = sum Netgen.Family.Paper in
  let self = (T.compare paper paper).T.score in
  List.iter
    (fun (label, fam) ->
      let r = T.compare paper (sum fam) in
      check_bool (label ^ " scores below self") true (r.T.score < self);
      check_bool (label ^ " score in range") true
        (r.T.score >= 0.0 && r.T.score <= 1.0))
    [
      ("waxman", Netgen.Family.Waxman Netgen.Family.default_waxman);
      ("glp", Netgen.Family.Glp Netgen.Family.default_glp);
      ("fattree", Netgen.Family.Fattree Netgen.Family.default_fattree);
    ]

let symmetry () =
  let sum fam =
    T.summarize
      (Netgen.Gentopo.as_graph
         (Netgen.generate fam Netgen.Conf.tiny (Random.State.make [| 3 |])))
  in
  let a = sum Netgen.Family.Paper
  and b = sum (Netgen.Family.Glp Netgen.Family.default_glp) in
  check_float "compare is symmetric" (T.compare a b).T.score
    (T.compare b a).T.score

let deterministic () =
  let g =
    Netgen.Gentopo.as_graph
      (Netgen.generate
         (Netgen.Family.Waxman Netgen.Family.default_waxman)
         Netgen.Conf.tiny (Random.State.make [| 3 |]))
  in
  (* Two independent summaries of the same graph are structurally
     equal: sampling and power iteration must not involve hidden
     randomness. *)
  check_bool "summaries equal" true (T.summarize g = T.summarize g)

let suite =
  [
    Alcotest.test_case "triangle by hand" `Quick triangle_metrics;
    Alcotest.test_case "k4 by hand" `Quick k4_metrics;
    Alcotest.test_case "path by hand" `Quick path_metrics;
    Alcotest.test_case "star by hand" `Quick star_metrics;
    Alcotest.test_case "empty graph" `Quick empty_graph;
    Alcotest.test_case "self-compare exactly 1.0" `Quick self_compare_exact;
    Alcotest.test_case "different families score lower" `Quick
      known_different_score_lower;
    Alcotest.test_case "compare symmetric" `Quick symmetry;
    Alcotest.test_case "summarize deterministic" `Quick deterministic;
  ]
