(* Tests for the Netgen.Family dispatcher and the non-paper generator
   families: parsing, per-family structural invariants, and
   whole-pipeline determinism. *)

open Bgp
module Family = Netgen.Family
module Gentopo = Netgen.Gentopo

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let check_string = Alcotest.(check string)

let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 17 }

let families =
  [
    Family.Paper;
    Family.Waxman Family.default_waxman;
    Family.Waxman { Family.alpha = 0.9; beta = 0.5 };
    Family.Glp Family.default_glp;
    Family.Glp { Family.m = 3; p = 0.3; beta = 0.2 };
    Family.Fattree Family.default_fattree;
    Family.Fattree { Family.pods = 4 };
  ]

let topo_of family = Netgen.generate family conf (Random.State.make [| 17 |])

(* --- Family.of_string / to_string ---------------------------------- *)

let roundtrip () =
  List.iter
    (fun f ->
      match Family.of_string (Family.to_string f) with
      | Ok f' ->
          check_bool (Family.to_string f ^ " round-trips") true (f = f')
      | Error e -> Alcotest.failf "%s failed to reparse: %s" (Family.to_string f) e)
    families

let parse_defaults () =
  check_bool "bare waxman" true
    (Family.of_string "waxman" = Ok (Family.Waxman Family.default_waxman));
  check_bool "bare glp" true
    (Family.of_string "glp" = Ok (Family.Glp Family.default_glp));
  check_bool "case-insensitive name" true
    (Family.of_string "PAPER" = Ok Family.Paper);
  check_bool "partial params keep defaults" true
    (Family.of_string "waxman:alpha=0.7"
    = Ok (Family.Waxman { Family.default_waxman with Family.alpha = 0.7 }))

let parse_rejections () =
  let rejected s =
    match Family.of_string s with
    | Error _ -> ()
    | Ok f -> Alcotest.failf "%S accepted as %s" s (Family.to_string f)
  in
  List.iter rejected
    [
      "nope";
      "";
      "waxman:alpha=nan";
      "waxman:alpha=0";
      "waxman:alpha=2.0";
      "waxman:zz=1";
      "waxman:alpha=0.4,alpha=0.5";
      "waxman:alpha";
      "waxman:";
      "glp:m=0";
      "glp:p=1.5";
      "glp:beta=2";
      "fattree:pods=3";
      "fattree:pods=-2";
      "paper:x=1";
    ]

let name_and_pp () =
  check_string "name strips params" "waxman"
    (Family.name (Family.Waxman { Family.alpha = 0.9; beta = 0.5 }));
  check_string "pp is to_string" "fattree:pods=4"
    (Format.asprintf "%a" Family.pp (Family.Fattree { Family.pods = 4 }));
  check_bool "default fattree omits pods" true
    (Family.to_string (Family.Fattree Family.default_fattree) = "fattree");
  check_bool "syntax help mentions every family" true
    (List.for_all
       (fun n ->
         let h = Family.syntax_help () in
         let rec mem i =
           i + String.length n <= String.length h
           && (String.sub h i (String.length n) = n || mem (i + 1))
         in
         mem 0)
       Family.names)

(* --- per-family structural invariants ------------------------------ *)

let for_each_family f () =
  List.iter (fun fam -> f (Family.to_string fam) (topo_of fam)) families

let connected =
  for_each_family (fun label topo ->
      let g = Gentopo.as_graph topo in
      let nodes = Topology.Asgraph.nodes g in
      check_bool (label ^ " nonempty") true (nodes <> []);
      check_int
        (label ^ " single component")
        (Topology.Asgraph.num_nodes g)
        (Asn.Set.cardinal (Topology.Asgraph.connected_component g (List.hd nodes))))

let tier_partition =
  for_each_family (fun label topo ->
      (* Every AS has a tier and at least one router; ASNs are dense
         from 1. *)
      let ases = Gentopo.ases topo in
      List.iteri
        (fun i a ->
          check_int (label ^ " dense asn") (i + 1) a;
          ignore (Gentopo.tier_of topo a);
          check_bool
            (label ^ " routers positive")
            true
            (Asn.Map.find a topo.Gentopo.routers >= 1))
        ases;
      let count t =
        List.length (List.filter (fun a -> Gentopo.tier_of topo a = t) ases)
      in
      check_bool (label ^ " has tier-1") true (count Gentopo.T1 > 0);
      check_bool (label ^ " has stubs") true (count Gentopo.Stub > 0))

let relationship_duality =
  for_each_family (fun label topo ->
      List.iter
        (fun (l : Gentopo.link) ->
          let ab = Gentopo.true_rel topo l.Gentopo.a l.Gentopo.b in
          let ba = Gentopo.true_rel topo l.Gentopo.b l.Gentopo.a in
          match (ab, ba) with
          | Some `Provider, Some `Customer
          | Some `Customer, Some `Provider
          | Some `Peer, Some `Peer
          | Some `Sibling, Some `Sibling ->
              ()
          | _, _ -> Alcotest.failf "%s: asymmetric relationship" label)
        topo.Gentopo.links)

let provider_acyclic =
  for_each_family (fun label topo ->
      (* The customer→provider digraph must be a DAG for every family
         (the generator's no-dispute-wheel guarantee): walking strictly
         provider-wards must never revisit an AS. *)
      let providers = Hashtbl.create 64 in
      List.iter
        (fun (l : Gentopo.link) ->
          if l.Gentopo.rel = Gentopo.Provider then
            Hashtbl.replace providers l.Gentopo.b
              (l.Gentopo.a
              :: Option.value ~default:[] (Hashtbl.find_opt providers l.Gentopo.b)))
        topo.Gentopo.links;
      let state = Hashtbl.create 64 in
      let rec visit a =
        match Hashtbl.find_opt state a with
        | Some `Done -> ()
        | Some `Active -> Alcotest.failf "%s: provider cycle at AS %d" label a
        | None ->
            Hashtbl.replace state a `Active;
            List.iter visit (Option.value ~default:[] (Hashtbl.find_opt providers a));
            Hashtbl.replace state a `Done
      in
      List.iter visit (Gentopo.ases topo))

let igp_costs =
  for_each_family (fun label topo ->
      List.iter
        (fun a ->
          let n = Asn.Map.find a topo.Gentopo.routers in
          for r1 = 0 to n - 1 do
            check_int (label ^ " self distance") 0 (Gentopo.igp_cost topo a r1 r1);
            for r2 = 0 to n - 1 do
              check_int
                (label ^ " symmetric igp")
                (Gentopo.igp_cost topo a r1 r2)
                (Gentopo.igp_cost topo a r2 r1)
            done
          done)
        (Gentopo.ases topo))

let family_recorded =
  for_each_family (fun label topo ->
      check_string (label ^ " provenance") label
        (Family.to_string topo.Gentopo.conf.Netgen.Conf.family))

let deprecated_shim_dispatches () =
  (* Gentopo.generate must dispatch on conf.family, not silently build
     the paper world. *)
  let fam = Family.Fattree { Family.pods = 4 } in
  let via_shim =
    Gentopo.generate
      { conf with Netgen.Conf.family = fam }
      (Random.State.make [| 17 |])
  in
  let direct = topo_of fam in
  check_bool "shim = dispatcher" true (via_shim.Gentopo.links = direct.Gentopo.links)

(* --- Groundtruth round-trip on every family ------------------------ *)

let groundtruth_roundtrip () =
  List.iter
    (fun fam ->
      let label = Family.to_string fam in
      let world =
        Netgen.Groundtruth.build { conf with Netgen.Conf.family = fam }
      in
      check_string (label ^ " world family") label
        (Family.to_string
           world.Netgen.Groundtruth.topo.Gentopo.conf.Netgen.Conf.family);
      check_bool (label ^ " has prefixes") true
        (world.Netgen.Groundtruth.prefix_plan <> []);
      check_bool (label ^ " has obs points") true
        (world.Netgen.Groundtruth.obs <> []);
      (* One prefix simulated end to end converges. *)
      let prefix, _, _ = List.hd world.Netgen.Groundtruth.prefix_plan in
      let st = Netgen.Groundtruth.simulate world prefix in
      check_bool (label ^ " converges") true (Simulator.Engine.converged st))
    [
      Family.Waxman Family.default_waxman;
      Family.Glp Family.default_glp;
      Family.Fattree Family.default_fattree;
    ]

(* --- determinism (QCheck) ------------------------------------------ *)

let family_gen =
  QCheck.Gen.oneofl
    [
      Family.Paper;
      Family.Waxman Family.default_waxman;
      Family.Glp Family.default_glp;
      Family.Fattree Family.default_fattree;
    ]

let arbitrary_family_seed =
  QCheck.make
    ~print:(fun (f, seed) -> Printf.sprintf "%s/seed %d" (Family.to_string f) seed)
    QCheck.Gen.(pair family_gen (int_bound 1000))

let qcheck_determinism =
  QCheck.Test.make ~name:"same seed+family, same structure_fingerprint"
    ~count:12 arbitrary_family_seed (fun (fam, seed) ->
      let build () =
        let world =
          Netgen.Groundtruth.build
            { conf with Netgen.Conf.seed; family = fam }
        in
        Simulator.Net.structure_fingerprint world.Netgen.Groundtruth.net
      in
      build () = build ())

let suite =
  [
    Alcotest.test_case "of_string round-trip" `Quick roundtrip;
    Alcotest.test_case "of_string defaults" `Quick parse_defaults;
    Alcotest.test_case "of_string rejections" `Quick parse_rejections;
    Alcotest.test_case "name and pp" `Quick name_and_pp;
    Alcotest.test_case "connected" `Quick connected;
    Alcotest.test_case "tier partition" `Quick tier_partition;
    Alcotest.test_case "relationship duality" `Quick relationship_duality;
    Alcotest.test_case "provider DAG" `Quick provider_acyclic;
    Alcotest.test_case "igp costs" `Quick igp_costs;
    Alcotest.test_case "family provenance" `Quick family_recorded;
    Alcotest.test_case "deprecated shim dispatches" `Quick
      deprecated_shim_dispatches;
    Alcotest.test_case "groundtruth round-trip" `Slow groundtruth_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_determinism;
  ]
