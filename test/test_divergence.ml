(* Reproducing the paper's §4.6 negative result: ranking routes with
   per-prefix LOCAL_PREF — which prefers longer paths over shorter ones
   — can make BGP diverge, while the MED+filter scheme cannot. *)

open Bgp
module Net = Simulator.Net
module Engine = Simulator.Engine
module Qrmodel = Asmodel.Qrmodel
module Refiner = Refine.Refiner

let check_bool = Alcotest.(check bool)

let check_int = Alcotest.(check int)

let p0 = Asn.origin_prefix 10

(* The classic BAD GADGET: origin AS 10 in the middle, ASes 1, 2, 3 in a
   ring, each preferring the route through its clockwise neighbour over
   its own direct route. *)
let bad_gadget () =
  let net = Net.create () in
  let o = Net.add_node net ~asn:10 ~ip:(Asn.router_ip 10 0) in
  let n = Array.init 3 (fun i -> Net.add_node net ~asn:(i + 1) ~ip:(Asn.router_ip (i + 1) 0)) in
  Array.iter (fun ni -> ignore (Net.connect net ni o)) n;
  for i = 0 to 2 do
    let next = n.((i + 1) mod 3) in
    let s_to_next, _ = Net.connect net n.(i) next in
    (* Prefer the (longer) route via the clockwise neighbour. *)
    Net.set_import_lpref_for net n.(i) s_to_next p0 200
  done;
  (net, o)

let bad_gadget_diverges () =
  let net, o = bad_gadget () in
  let st = Engine.simulate net ~prefix:p0 ~originators:[ o ] in
  check_bool "engine detects divergence" false (Engine.converged st);
  (* The watchdog pins the failure down to a genuine oscillation — a
     repeated full state — rather than a mere budget exhaustion. *)
  (match Engine.outcome st with
  | Engine.Diverged { cycle_len } ->
      check_bool "positive cycle length" true (cycle_len > 0)
  | o -> Alcotest.failf "expected Diverged, got %a" Engine.pp_outcome o);
  (* And it fires instead of burning the x2/x4 escalated budgets. *)
  check_bool "cut short before escalation" true (Engine.events st < 1800)

let explicit_budget_truncates () =
  (* An explicit [max_events] is exact: no escalation, outcome
     [Truncated] with the caller's budget. *)
  let net, o = bad_gadget () in
  let st = Engine.simulate ~max_events:7 net ~prefix:p0 ~originators:[ o ] in
  (match Engine.outcome st with
  | Engine.Truncated { events; budget } ->
      check_int "budget is the explicit cap" 7 budget;
      check_int "events reported" (Engine.events st) events
  | o -> Alcotest.failf "expected Truncated, got %a" Engine.pp_outcome o);
  (* Opting in to escalation raises the effective cap to 7*2*2 = 28. *)
  let st = Engine.simulate ~max_events:7 ~max_escalations:2 net ~prefix:p0 ~originators:[ o ] in
  check_bool "escalated run goes past the base cap" true (Engine.events st > 7);
  (match Engine.outcome st with
  | Engine.Truncated { budget; _ } -> check_int "final budget escalated" 28 budget
  | Engine.Diverged _ -> () (* the watchdog may legitimately fire first *)
  | Engine.Converged -> Alcotest.fail "bad gadget cannot converge")

let bad_gadget_stable_without_lpref () =
  (* The same topology with no preference rules converges immediately:
     the instability is the policy, not the graph. *)
  let net = Net.create () in
  let o = Net.add_node net ~asn:10 ~ip:(Asn.router_ip 10 0) in
  let n = Array.init 3 (fun i -> Net.add_node net ~asn:(i + 1) ~ip:(Asn.router_ip (i + 1) 0)) in
  Array.iter (fun ni -> ignore (Net.connect net ni o)) n;
  for i = 0 to 2 do
    ignore (Net.connect net n.(i) n.((i + 1) mod 3))
  done;
  let st = Engine.simulate net ~prefix:p0 ~originators:[ o ] in
  check_bool "stable" true (Engine.converged st);
  Array.iter
    (fun ni ->
      check_bool "direct route" true
        (Engine.best_full_path net st ni = Some [| Net.asn_of net ni; 10 |]))
    n

let per_prefix_lpref_scoping () =
  (* A per-prefix preference must not leak onto other prefixes. *)
  let net = Net.create () in
  let a = Net.add_node net ~asn:1 ~ip:(Asn.router_ip 1 0) in
  let b = Net.add_node net ~asn:2 ~ip:(Asn.router_ip 2 0) in
  let c = Net.add_node net ~asn:3 ~ip:(Asn.router_ip 3 0) in
  let s_ab, _ = Net.connect net a b in
  ignore (Net.connect net a c);
  ignore (Net.connect net b c);
  (* For prefix of AS 3 only, a prefers the longer route via b. *)
  Net.set_import_lpref_for net a s_ab (Asn.origin_prefix 3) 200;
  let st3 = Engine.simulate net ~prefix:(Asn.origin_prefix 3) ~originators:[ c ] in
  check_bool "preferred longer route" true
    (Engine.best_full_path net st3 a = Some [| 1; 2; 3 |]);
  (* Another prefix of AS 3's neighbour takes the shortest path. *)
  let st2 = Engine.simulate net ~prefix:(Asn.origin_prefix 2) ~originators:[ b ] in
  check_bool "other prefix unaffected" true
    (Engine.best_full_path net st2 a = Some [| 1; 2 |])

(* Refiner-level comparison on the Figure-5 scenario, where both modes
   can in principle realize the observed paths. *)
let op asn = { Rib.op_ip = Asn.router_ip asn 0; op_as = asn }

let entry o origin path_list =
  {
    Rib.op = op o;
    prefix = Asn.origin_prefix origin;
    path = Aspath.of_list path_list;
  }

let fig5_graph =
  Topology.Asgraph.of_edges [ (1, 2); (1, 4); (1, 5); (2, 3); (3, 4); (4, 5) ]

let fig5_training =
  Rib.of_entries
    [ entry 1 3 [ 1; 2; 3 ]; entry 1 4 [ 1; 4 ]; entry 1 4 [ 1; 5; 4 ] ]

let lpref_mode_on_simple_scenario () =
  let options =
    { Refiner.default_options with ranking = Refiner.Lpref_ranking }
  in
  let result =
    Refiner.refine ~options (Qrmodel.initial fig5_graph) ~training:fig5_training
  in
  (* On this loop-free scenario the lpref mode works too, and adds no
     filters (preference alone beats path length). *)
  check_bool "converged here" true result.Refiner.converged;
  check_int "no filters needed" 0
    (fst (Simulator.Net.count_policies result.Refiner.model.Qrmodel.net));
  check_int "no divergence here" 0 result.Refiner.unstable_prefixes

let med_mode_never_unstable () =
  (* The paper's scheme on a generated world: all final simulations
     converge (the med scheme cannot create preference cycles). *)
  let conf = { Netgen.Conf.tiny with Netgen.Conf.seed = 21 } in
  let world = Netgen.Groundtruth.build conf in
  let data = Netgen.Groundtruth.observe world in
  let prepared = Core.prepare data in
  let result = Core.build prepared ~training:prepared.Core.data in
  check_int "no unstable prefixes" 0 result.Refine.Refiner.unstable_prefixes;
  check_bool "converged" true result.Refine.Refiner.converged

let suite =
  [
    Alcotest.test_case "bad gadget diverges" `Quick bad_gadget_diverges;
    Alcotest.test_case "explicit budget truncates" `Quick
      explicit_budget_truncates;
    Alcotest.test_case "bad gadget stable without lpref" `Quick
      bad_gadget_stable_without_lpref;
    Alcotest.test_case "per-prefix lpref scoping" `Quick per_prefix_lpref_scoping;
    Alcotest.test_case "lpref mode on simple scenario" `Quick
      lpref_mode_on_simple_scenario;
    Alcotest.test_case "med mode never unstable" `Slow med_mode_never_unstable;
  ]
